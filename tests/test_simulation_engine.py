"""Unit tests for the discrete-event engine."""

import random

import pytest

from repro.simulation.engine import PeriodicTimer, Simulator


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run_until(10.0)
        assert order == ["a", "b", "c"]
        assert sim.now == 10.0

    def test_simultaneous_events_fifo_within_priority(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(1.0, lambda: order.append(2))
        sim.schedule(1.0, lambda: order.append(0), priority=-1)
        sim.run_until(2.0)
        assert order == [0, 1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run_until(10.0)
        assert fired == [5.0]
        with pytest.raises(ValueError):
            sim.schedule_at(3.0, lambda: None)

    def test_run_until_does_not_execute_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("later"))
        sim.run_until(2.0)
        assert fired == []
        sim.run_until(6.0)
        assert fired == ["later"]

    def test_run_until_past_time_rejected(self):
        sim = Simulator()
        sim.run_until(5.0)
        with pytest.raises(ValueError):
            sim.run_until(2.0)

    def test_event_cancellation(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        sim.run_until(2.0)
        assert fired == []

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_during_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run_until(5.0)
        assert fired == [1]
        # a second run resumes the remaining events
        sim.run_until(5.0)
        assert fired == [1, 2]

    def test_processed_and_pending_counters(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2
        sim.run_until(1.5)
        assert sim.processed_events == 1

    def test_drain_runs_everything(self):
        sim = Simulator()
        fired = []
        for t in (5.0, 1.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        executed = sim.drain()
        assert executed == 3
        assert fired == [1.0, 3.0, 5.0]

    def test_run_convenience(self):
        sim = Simulator()
        sim.run(5.0)
        assert sim.now == 5.0
        sim.run(2.5)
        assert sim.now == 7.5


class TestPeriodicTimer:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now))
        sim.run_until(9.0)
        assert ticks == [2.0, 4.0, 6.0, 8.0]

    def test_initial_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 5.0, lambda: ticks.append(sim.now), initial_delay=1.0)
        sim.run_until(12.0)
        assert ticks == [1.0, 6.0, 11.0]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run_until(3.5)
        timer.stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0, 3.0]
        assert timer.stopped

    def test_jitter_requires_rng(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 1.0, lambda: None, jitter=0.5)

    def test_jitter_desynchronises(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now), jitter=0.5, rng=random.Random(1))
        sim.run_until(10.0)
        assert len(ticks) >= 3
        assert all(t >= 2.0 for t in ticks[:1])
        # at least one tick is off the exact multiple of the period
        assert any(abs(t - round(t / 2.0) * 2.0) > 1e-9 for t in ticks)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)
