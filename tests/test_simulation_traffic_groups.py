"""Unit tests for traffic sources and the multicast group manager."""

import pytest

from repro.geo.geometry import Point
from repro.simulation.agent import ProtocolAgent
from repro.simulation.groups import GroupEvent, MulticastGroupManager
from repro.simulation.traffic import CbrMulticastSource, PoissonMulticastSource

from tests.conftest import make_static_network


class CountingMulticastAgent(ProtocolAgent):
    protocol_name = "counting"

    def __init__(self):
        super().__init__()
        self.sent = []

    def on_packet(self, packet, from_node):
        pass

    def send_multicast(self, group, payload, size_bytes=512):
        self.sent.append((group, payload, size_bytes, self.now))


def network_with_agents(count=4):
    positions = {i: Point(100.0 * i + 50.0, 500.0) for i in range(count)}
    net = make_static_network(positions)
    agents = {}
    for node in net.nodes.values():
        agent = CountingMulticastAgent()
        node.attach_agent(agent)
        agents[node.node_id] = agent
    return net, agents


class TestCbrSource:
    def test_emits_at_constant_rate(self):
        net, agents = network_with_agents()
        source = CbrMulticastSource(net, 0, group=1, protocol_name="counting", interval=2.0, start_time=1.0)
        net.run(11.0)
        assert source.packets_sent == len(agents[0].sent)
        assert source.packets_sent == 6   # t = 1, 3, 5, 7, 9, 11

    def test_stop_time(self):
        net, agents = network_with_agents()
        CbrMulticastSource(
            net, 0, group=1, protocol_name="counting", interval=1.0, start_time=0.5, stop_time=3.0
        )
        net.run(10.0)
        assert all(t <= 3.0 for (_, _, _, t) in agents[0].sent)

    def test_stopped_source_stops(self):
        net, agents = network_with_agents()
        source = CbrMulticastSource(net, 0, group=1, protocol_name="counting", interval=1.0)
        net.run(3.5)
        source.stop()
        count = len(agents[0].sent)
        net.run(5.0)
        assert len(agents[0].sent) == count

    def test_dead_source_does_not_send(self):
        net, agents = network_with_agents()
        CbrMulticastSource(net, 0, group=1, protocol_name="counting", interval=1.0)
        net.node(0).fail()
        net.run(5.0)
        assert agents[0].sent == []

    def test_invalid_parameters(self):
        net, _ = network_with_agents()
        with pytest.raises(ValueError):
            CbrMulticastSource(net, 0, 1, "counting", interval=0.0)
        with pytest.raises(ValueError):
            CbrMulticastSource(net, 0, 1, "counting", payload_bytes=0)

    def test_payload_sequence_increments(self):
        net, agents = network_with_agents()
        CbrMulticastSource(net, 0, group=7, protocol_name="counting", interval=1.0)
        net.run(4.0)
        sequences = [payload[1] for (_, payload, _, _) in agents[0].sent]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)


class TestPoissonSource:
    def test_rate_roughly_matches(self):
        net, agents = network_with_agents()
        PoissonMulticastSource(net, 0, group=1, protocol_name="counting", rate=2.0, seed=5)
        net.run(100.0)
        count = len(agents[0].sent)
        assert 120 < count < 280    # ~200 expected

    def test_stop(self):
        net, agents = network_with_agents()
        source = PoissonMulticastSource(net, 0, group=1, protocol_name="counting", rate=5.0, seed=6)
        net.run(2.0)
        source.stop()
        count = len(agents[0].sent)
        net.run(10.0)
        assert len(agents[0].sent) == count

    def test_invalid_rate(self):
        net, _ = network_with_agents()
        with pytest.raises(ValueError):
            PoissonMulticastSource(net, 0, 1, "counting", rate=0.0)


class TestGroupManager:
    def test_create_group_joins_members(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=1)
        manager.create_group(1, [0, 2])
        assert manager.members(1) == {0, 2}
        assert net.node(0).is_member(1)
        assert not net.node(1).is_member(1)

    def test_duplicate_group_rejected(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=1)
        manager.create_group(1, [0])
        with pytest.raises(ValueError):
            manager.create_group(1, [1])

    def test_create_random_group(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=2)
        members = manager.create_random_group(5, size=3)
        assert len(members) == 3
        assert manager.members(5) == set(members)

    def test_random_group_too_large(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=2)
        with pytest.raises(ValueError):
            manager.create_random_group(5, size=100)

    def test_join_leave_history(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=3)
        manager.create_group(1, [0])
        manager.join(1, 2)
        manager.leave(1, 0)
        events = [(c.node_id, c.event) for c in manager.history]
        assert (2, GroupEvent.JOIN) in events
        assert (0, GroupEvent.LEAVE) in events
        assert manager.members(1) == {2}

    def test_leave_nonmember_noop(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=3)
        manager.create_group(1, [0])
        manager.leave(1, 3)
        assert manager.members(1) == {0}

    def test_churn_respects_min_members(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=4)
        manager.create_group(1, [0, 1])
        manager.start_churn(1, rate=5.0, min_members=1)
        net.run(30.0)
        assert len(manager.members(1)) >= 1
        assert len(manager.history) > 2

    def test_churn_requires_existing_group(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=4)
        with pytest.raises(ValueError):
            manager.start_churn(9, rate=1.0)

    def test_observed_churn_rate(self):
        net, _ = network_with_agents()
        manager = MulticastGroupManager(net, seed=5)
        manager.create_group(1, [0])
        manager.start_churn(1, rate=2.0)
        net.run(20.0)
        assert manager.churn_rate_observed(20.0) > 0.0
        with pytest.raises(ValueError):
            manager.churn_rate_observed(0.0)
