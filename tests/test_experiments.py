"""Tests of the experiment harness (scenario building, runs, sweeps)."""

import dataclasses

import pytest

from repro.baselines.flooding import FLOODING_PROTOCOL, FloodingStack
from repro.core.protocol import HVDB_PROTOCOL, HVDBConfig, HVDBStack
from repro.experiments.runner import results_table, run_scenario, sweep
from repro.experiments.scenarios import PROTOCOLS, ScenarioConfig, build_scenario
from repro.simulation.stack import ProtocolStack


def tiny_config(protocol=HVDB_PROTOCOL, **overrides):
    base = ScenarioConfig(
        protocol=protocol,
        n_nodes=30,
        area_size=800.0,
        radio_range=250.0,
        max_speed=2.0,
        group_size=5,
        traffic_start=15.0,
        traffic_interval=2.0,
        hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        seed=5,
    )
    return dataclasses.replace(base, **overrides)


class TestScenarioBuilding:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="registered protocols"):
            build_scenario(tiny_config(protocol="nonexistent"))

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_every_protocol_builds(self, protocol):
        scenario = build_scenario(tiny_config(protocol=protocol))
        assert len(scenario.network.nodes) == 30
        assert scenario.sources
        assert isinstance(scenario.stack, ProtocolStack)
        assert scenario.stack.name == protocol
        for node in scenario.network.nodes.values():
            assert node.has_agent(protocol)

    def test_hvdb_scenario_reports_backbone(self):
        scenario = build_scenario(tiny_config())
        assert isinstance(scenario.stack, HVDBStack)
        assert scenario.backbone_nodes() is not None

    def test_baseline_scenario_uniform_interface(self):
        # no special case: baselines answer the same stack interface,
        # with no backbone but real aggregate stats
        scenario = build_scenario(tiny_config(protocol=FLOODING_PROTOCOL))
        assert isinstance(scenario.stack, FloodingStack)
        assert scenario.backbone_nodes() is None
        assert set(scenario.protocol_stats()) == {"data_originated", "rebroadcasts"}

    def test_too_many_sources_rejected(self):
        with pytest.raises(ValueError, match="sources_per_group"):
            build_scenario(tiny_config(group_size=3, sources_per_group=4))

    def test_groups_created_with_requested_size(self):
        scenario = build_scenario(tiny_config(n_groups=2, group_size=4))
        assert len(scenario.groups.members(1)) == 4
        assert len(scenario.groups.members(2)) == 4

    def test_static_when_speed_zero(self):
        scenario = build_scenario(tiny_config(max_speed=0.0))
        before = {n: scenario.network.position_of(n) for n in scenario.network.nodes}
        scenario.start()
        scenario.network.simulator.run(10.0)
        after = {n: scenario.network.position_of(n) for n in scenario.network.nodes}
        assert before == after


class TestRunner:
    def test_run_scenario_produces_report(self):
        result = run_scenario(tiny_config(), duration=40.0)
        assert result.report.protocol == HVDB_PROTOCOL
        assert result.report.node_count == 30
        assert result.report.delivery.packets_originated > 0
        assert 0.0 <= result.report.delivery.delivery_ratio <= 1.0
        assert result.report.overhead.total_transmissions > 0

    def test_flooding_delivers_on_connected_network(self):
        result = run_scenario(tiny_config(protocol=FLOODING_PROTOCOL), duration=40.0)
        assert result.report.delivery.delivery_ratio > 0.5

    def test_during_run_hook_called_midway(self):
        calls = []
        run_scenario(
            tiny_config(protocol=FLOODING_PROTOCOL),
            duration=40.0,
            during_run=lambda scenario: calls.append(scenario.network.simulator.now),
        )
        assert len(calls) == 1
        assert calls[0] == pytest.approx(20.0)

    def test_before_run_hook(self):
        seen = []
        run_scenario(
            tiny_config(protocol=FLOODING_PROTOCOL),
            duration=30.0,
            before_run=lambda scenario: seen.append(len(scenario.network.nodes)),
        )
        assert seen == [30]

    def test_row_includes_extras(self):
        result = run_scenario(tiny_config(protocol=FLOODING_PROTOCOL), duration=30.0)
        row = result.row(swept_value=42)
        assert row["swept_value"] == 42
        assert row["protocol"] == FLOODING_PROTOCOL


class TestSweep:
    def test_sweep_varies_parameter(self):
        results = sweep(
            tiny_config(protocol=FLOODING_PROTOCOL),
            parameter="n_nodes",
            values=[20, 40],
            duration=30.0,
        )
        assert [r.config.n_nodes for r in results] == [20, 40]
        assert [r.report.node_count for r in results] == [20, 40]

    def test_sweep_extra_overrides(self):
        results = sweep(
            tiny_config(protocol=FLOODING_PROTOCOL),
            parameter="max_speed",
            values=[0.0],
            duration=20.0,
            extra_overrides={"n_nodes": 25},
        )
        assert results[0].config.n_nodes == 25

    def test_results_table_contains_swept_column(self):
        results = sweep(
            tiny_config(protocol=FLOODING_PROTOCOL),
            parameter="n_nodes",
            values=[20],
            duration=20.0,
        )
        table = results_table(results, swept="n_nodes", title="demo")
        assert "demo" in table
        assert "n_nodes" in table
        assert "20" in table
