"""Unit tests for greedy geographic unicast routing."""

import pytest

from repro.geo.geometry import Point
from repro.simulation.agent import ProtocolAgent
from repro.simulation.packet import Packet, PacketKind, data_packet
from repro.unicast.greedy import greedy_next_hop, path_stretch, recovery_next_hop
from repro.unicast.router import GEO_PROTOCOL, GeoUnicastAgent

from tests.conftest import make_static_network


class TestGreedySelection:
    def test_picks_neighbor_with_most_progress(self):
        neighbors = {1: Point(50.0, 0.0), 2: Point(80.0, 0.0), 3: Point(20.0, 50.0)}
        nxt = greedy_next_hop(Point(0.0, 0.0), Point(100.0, 0.0), neighbors)
        assert nxt == 2

    def test_returns_none_without_progress(self):
        neighbors = {1: Point(-50.0, 0.0), 2: Point(0.0, -60.0)}
        assert greedy_next_hop(Point(0.0, 0.0), Point(100.0, 0.0), neighbors) is None

    def test_excluded_neighbors_skipped(self):
        neighbors = {1: Point(80.0, 0.0), 2: Point(60.0, 0.0)}
        nxt = greedy_next_hop(Point(0.0, 0.0), Point(100.0, 0.0), neighbors, exclude={1})
        assert nxt == 2

    def test_empty_neighbors(self):
        assert greedy_next_hop(Point(0.0, 0.0), Point(1.0, 1.0), {}) is None

    def test_recovery_ignores_progress_requirement(self):
        neighbors = {1: Point(-50.0, 0.0), 2: Point(-20.0, 0.0)}
        nxt = recovery_next_hop(Point(0.0, 0.0), Point(100.0, 0.0), neighbors, visited=set())
        assert nxt == 2

    def test_recovery_skips_visited(self):
        neighbors = {1: Point(-20.0, 0.0), 2: Point(-50.0, 0.0)}
        nxt = recovery_next_hop(Point(0.0, 0.0), Point(100.0, 0.0), neighbors, visited={1})
        assert nxt == 2

    def test_recovery_all_visited(self):
        neighbors = {1: Point(-20.0, 0.0)}
        assert recovery_next_hop(Point(0.0, 0.0), Point(100.0, 0.0), neighbors, visited={1}) is None

    def test_path_stretch(self):
        straight = [Point(0.0, 0.0), Point(50.0, 0.0), Point(100.0, 0.0)]
        assert path_stretch(straight) == pytest.approx(1.0)
        detour = [Point(0.0, 0.0), Point(50.0, 50.0), Point(100.0, 0.0)]
        assert path_stretch(detour) > 1.0
        assert path_stretch([Point(0.0, 0.0)]) == 1.0


class SinkAgent(ProtocolAgent):
    """Records inner packets arriving at this node."""

    protocol_name = "sink"

    def __init__(self):
        super().__init__()
        self.received = []

    def on_packet(self, packet, from_node):
        if packet.protocol == "sink":
            self.received.append((packet, from_node))


def build_geo_network(positions, radio_range=150.0):
    net = make_static_network(positions, radio_range=radio_range)
    sinks = {}
    for node in net.nodes.values():
        node.attach_agent(GeoUnicastAgent())
        sink = SinkAgent()
        node.attach_agent(sink)
        sinks[node.node_id] = sink
    return net, sinks


def inner_packet(source, size=100):
    return Packet(
        kind=PacketKind.DATA,
        protocol="sink",
        msg_type="data",
        source=source,
        size_bytes=size,
        created_at=0.0,
    )


class TestGeoUnicastAgent:
    def test_multi_hop_delivery_along_line(self):
        positions = {i: Point(100.0 * i + 10.0, 500.0) for i in range(6)}
        net, sinks = build_geo_network(positions)
        geo = net.node(0).agent(GEO_PROTOCOL)
        geo.send(inner_packet(0), dest_node=5)
        net.simulator.run(2.0)
        assert len(sinks[5].received) == 1
        packet, _ = sinks[5].received[0]
        assert packet.hops == 5
        # intermediate nodes forwarded but did not deliver the inner packet
        assert sinks[3].received == []

    def test_local_delivery_without_radio(self):
        positions = {0: Point(10.0, 10.0), 1: Point(900.0, 900.0)}
        net, sinks = build_geo_network(positions)
        geo = net.node(0).agent(GEO_PROTOCOL)
        geo.send(inner_packet(0), dest_node=0)
        assert len(sinks[0].received) == 1
        assert net.stats.transmissions == 0

    def test_drop_when_destination_unreachable(self):
        positions = {0: Point(10.0, 10.0), 1: Point(900.0, 900.0)}
        net, sinks = build_geo_network(positions)
        geo = net.node(0).agent(GEO_PROTOCOL)
        geo.send(inner_packet(0), dest_node=1)
        net.simulator.run(2.0)
        assert sinks[1].received == []
        assert geo.dropped_no_route >= 1

    def test_drop_when_destination_dead(self):
        positions = {0: Point(10.0, 500.0), 1: Point(110.0, 500.0)}
        net, sinks = build_geo_network(positions)
        net.node(1).fail()
        geo = net.node(0).agent(GEO_PROTOCOL)
        geo.send(inner_packet(0), dest_node=1)
        net.simulator.run(2.0)
        assert sinks[1].received == []

    def test_recovery_routes_around_void(self):
        # a concave "C"-shaped topology: greedy progress from node 1 stalls,
        # recovery must walk around the rim
        positions = {
            0: Point(100.0, 500.0),
            1: Point(220.0, 500.0),   # local maximum towards destination
            2: Point(220.0, 380.0),
            3: Point(340.0, 380.0),
            4: Point(460.0, 420.0),
            5: Point(460.0, 500.0),   # destination (out of range of 1)
        }
        net, sinks = build_geo_network(positions, radio_range=130.0)
        geo = net.node(0).agent(GEO_PROTOCOL)
        geo.send(inner_packet(0), dest_node=5)
        net.simulator.run(3.0)
        assert len(sinks[5].received) == 1

    def test_counters(self):
        positions = {i: Point(100.0 * i + 10.0, 500.0) for i in range(4)}
        net, _ = build_geo_network(positions)
        geo0 = net.node(0).agent(GEO_PROTOCOL)
        geo0.send(inner_packet(0), dest_node=3)
        net.simulator.run(2.0)
        geo3 = net.node(3).agent(GEO_PROTOCOL)
        assert geo0.sent == 1
        assert geo3.delivered == 1
        middle = net.node(1).agent(GEO_PROTOCOL)
        assert middle.forwarded >= 1

    def test_envelope_size_includes_overhead(self):
        positions = {0: Point(10.0, 500.0), 1: Point(110.0, 500.0)}
        net, _ = build_geo_network(positions)
        geo = net.node(0).agent(GEO_PROTOCOL)
        geo.send(inner_packet(0, size=200), dest_node=1)
        assert net.stats.transmitted_bytes > 200
