"""Tests of the pluggable result-store backends.

Covers the guarantees the persistence layer rests on: store specs parse
(bare path = json, ``sqlite:file.db`` picks a backend, conflicts fail),
unknown store names fail eagerly with alternatives and leave no
directory behind, each backend round-trips ``RunResult`` records (get /
put / delete / keys / batch scan), the store choice is sweep-cosmetic
(byte-identical CSV/JSON artifacts across backends, warm replay with
zero executions from a cache written under another backend), sqlite
survives concurrent same-key publishers, corrupt entries are counted
and re-executed instead of crashing, ``merge_caches`` migrates between
backends, and the queue executor publishes through the configured
store.
"""

import json
import os
import sqlite3
import threading

import pytest

from repro.experiments.executors import WorkQueue, make_executor
from repro.experiments.orchestrator import (
    ResultCache,
    RunResult,
    SpecError,
    SweepSpec,
    expand_spec,
    load_cached_results,
    merge_caches,
    run_sweep,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.stores import (
    DEFAULT_STORE,
    STORES,
    JsonStore,
    SqliteStore,
    StoreError,
    available_stores,
    make_store,
    parse_store_spec,
    store_exists,
)
from repro.registry import RegistryError


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=12,
            area_size=500.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=4,
            traffic_start=3.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [10, 14]},
        seeds=(1, 2),
        duration=10.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


def fake_result(i: int = 0, **overrides) -> RunResult:
    fields = dict(
        run_id=f"tiny-{i:04d}",
        params={"n_nodes": 10 + i},
        seed=i,
        duration=10.0,
        metrics={"pdr": 0.5 + 0.01 * i, "mean_delay": 0.2},
        wall_time=0.1 * (i + 1),
        cache_key=f"{i:03d}" + "a" * 61,
    )
    fields.update(overrides)
    return RunResult(**fields)


class TestStoreSpecs:
    def test_bare_path_is_default_backend(self):
        assert parse_store_spec("some/dir") == (None, "some/dir")
        assert parse_store_spec(".repro-cache") == (None, ".repro-cache")

    def test_prefix_selects_backend(self):
        assert parse_store_spec("sqlite:runs.db") == ("sqlite", "runs.db")
        assert parse_store_spec("json:some/dir") == ("json", "some/dir")

    def test_windowsish_and_relative_paths_are_not_prefixes(self):
        # drive letters, dotted names and slashes before the colon must
        # not be mistaken for backend names
        assert parse_store_spec("C:/cache")[0] is None
        assert parse_store_spec("./odd:name")[0] is None
        assert parse_store_spec("a/b:c")[0] is None

    def test_registry_lists_builtin_backends(self):
        names = [name for name, _ in available_stores()]
        assert "json" in names and "sqlite" in names
        assert DEFAULT_STORE == "json"

    def test_unknown_store_fails_with_alternatives_and_no_dir(self, tmp_path):
        target = tmp_path / "cache"
        with pytest.raises(RegistryError, match="sqlite"):
            make_store(str(target), store="mongodb")
        assert not target.exists()

    def test_conflicting_prefix_and_store_arg(self, tmp_path):
        with pytest.raises(StoreError, match="also requested"):
            make_store(f"sqlite:{tmp_path}/c.db", store="json")

    def test_explicit_store_equal_to_prefix_is_fine(self, tmp_path):
        store = make_store(f"sqlite:{tmp_path}/c.db", store="sqlite")
        assert isinstance(store, SqliteStore)
        store.close()

    def test_store_exists_per_backend(self, tmp_path):
        assert not store_exists(str(tmp_path / "nope"))
        json_store = make_store(str(tmp_path / "j"))
        json_store.close()
        assert store_exists(str(tmp_path / "j"))
        db = tmp_path / "s.db"
        sqlite_store = make_store(f"sqlite:{db}")
        sqlite_store.close()
        assert store_exists(f"sqlite:{db}")
        assert not store_exists(str(db))  # bare path means json => isdir


class TestRoundTrip:
    @pytest.mark.parametrize("spec_tpl", ["{dir}/cache", "sqlite:{dir}/cache.db"])
    def test_put_get_keys_scan_delete(self, tmp_path, spec_tpl):
        store = make_store(spec_tpl.format(dir=tmp_path))
        results = [fake_result(i) for i in range(5)]
        for result in results:
            store.put(result.cache_key, result)
        assert sorted(store.keys()) == sorted(r.cache_key for r in results)

        got = store.get(results[2].cache_key)
        assert got is not None and got.from_cache is True
        assert got.params == results[2].params
        assert got.metrics == results[2].metrics
        assert store.get("f" * 64) is None

        wanted = [results[4].cache_key, results[0].cache_key]
        scanned = list(store.scan(wanted))
        assert [key for key, _ in scanned] == wanted
        assert [r.seed for _, r in scanned] == [4, 0]
        assert {key for key, _ in store.scan()} == set(store.keys())

        store.delete(results[0].cache_key)
        store.delete(results[0].cache_key)  # idempotent
        assert store.get(results[0].cache_key) is None
        store.close()

    def test_put_overwrites(self, tmp_path):
        store = make_store(f"sqlite:{tmp_path}/c.db")
        store.put("k" * 64, fake_result(1))
        store.put("k" * 64, fake_result(2))
        assert store.get("k" * 64).seed == 2
        assert len(store.keys()) == 1
        store.close()

    def test_result_cache_alias_is_json_store(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        assert isinstance(cache, JsonStore)
        cache.put("a" * 64, fake_result())
        assert cache.get("a" * 64) is not None

    def test_json_bytes_unchanged_by_sqlite_round_trip(self, tmp_path):
        """The sqlite backend must preserve the exact json serialization."""
        json_store = make_store(str(tmp_path / "j"))
        sqlite_store = make_store(f"sqlite:{tmp_path}/s.db")
        original = fake_result(3, adaptive_round=2)
        json_store.put(original.cache_key, original)
        sqlite_store.put(original.cache_key, sqlite_store.get("nope") or original)
        round_tripped = sqlite_store.get(original.cache_key)
        json_store.put("b" * 64, round_tripped)
        first = (tmp_path / "j" / f"{original.cache_key}.json").read_bytes()
        second = (tmp_path / "j" / ("b" * 64 + ".json")).read_bytes()
        assert first == second


class TestCorruption:
    def test_json_corrupt_entry_counts_and_misses(self, tmp_path):
        store = make_store(str(tmp_path / "cache"))
        store.put("a" * 64, fake_result())
        (tmp_path / "cache" / ("a" * 64 + ".json")).write_text("{not json")
        assert store.get("a" * 64) is None
        assert store.corrupt_entries == 1
        assert "1 corrupt" in store.describe() or "corrupt" in store.describe()

    def test_sqlite_corrupt_payload_counts_and_misses(self, tmp_path):
        db = tmp_path / "c.db"
        store = make_store(f"sqlite:{db}")
        store.put("a" * 64, fake_result())
        with sqlite3.connect(db) as conn:
            conn.execute("UPDATE results SET metrics = '{broken'")
        assert store.get("a" * 64) is None
        assert store.corrupt_entries == 1
        store.close()

    def test_sqlite_unknown_schema_version_is_corrupt(self, tmp_path):
        db = tmp_path / "c.db"
        store = make_store(f"sqlite:{db}")
        store.put("a" * 64, fake_result())
        with sqlite3.connect(db) as conn:
            conn.execute("UPDATE results SET schema_version = 999")
        assert store.get("a" * 64) is None
        assert store.corrupt_entries == 1
        store.close()


class TestSqliteConcurrency:
    def test_concurrent_same_key_puts(self, tmp_path):
        store = make_store(f"sqlite:{tmp_path}/c.db")
        errors = []

        def publish(i):
            try:
                for _ in range(10):
                    store.put("k" * 64, fake_result(i))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=publish, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        final = store.get("k" * 64)
        assert final is not None and final.seed in range(4)
        assert len(store.keys()) == 1
        store.close()


class TestSweepIntegration:
    def test_cross_backend_byte_identical_artifacts(self, tmp_path):
        """One set of results, exported through each backend, byte-equal."""
        from repro.experiments.orchestrator import export_csv, export_json

        spec = tiny_spec()
        json_cache = str(tmp_path / "json-cache")
        sqlite_cache = f"sqlite:{tmp_path}/cache.db"
        run_sweep(spec, workers=2, cache_dir=json_cache)
        merge_caches([json_cache], sqlite_cache)
        outputs = {}
        for tag, target in (("json", json_cache), ("sqlite", sqlite_cache)):
            results, missing = load_cached_results(spec, target)
            assert not missing
            csv_path = tmp_path / f"{tag}.csv"
            json_path = tmp_path / f"{tag}.json"
            export_csv(results, str(csv_path))
            export_json(results, str(json_path), spec=spec)
            outputs[tag] = (csv_path.read_bytes(), json_path.read_bytes())
        assert outputs["json"][0] == outputs["sqlite"][0]
        assert outputs["json"][1] == outputs["sqlite"][1]

    def test_warm_replay_zero_exec_under_sqlite(self, tmp_path):
        spec = tiny_spec()
        target = f"sqlite:{tmp_path}/cache.db"
        run_sweep(spec, workers=2, cache_dir=target)
        warm = run_sweep(spec, workers=1, cache_dir=target, executor="serial")
        assert all(r.from_cache for r in warm)
        loaded, missing = load_cached_results(spec, target)
        assert not missing
        assert len(loaded) == len(warm)

    def test_store_param_applies_to_bare_path(self, tmp_path):
        spec = tiny_spec()
        target = str(tmp_path / "cache.db")
        run_sweep(spec, workers=1, cache_dir=target, store="sqlite", executor="serial")
        assert os.path.isfile(target)
        warm = run_sweep(
            spec, workers=1, cache_dir=target, store="sqlite", executor="serial"
        )
        assert all(r.from_cache for r in warm)

    def test_spec_store_field_used(self, tmp_path):
        spec = tiny_spec(store="sqlite")
        target = str(tmp_path / "cache.db")
        run_sweep(spec, workers=1, cache_dir=target, executor="serial")
        assert os.path.isfile(target)

    def test_corrupt_sqlite_entry_reexecuted(self, tmp_path, capsys):
        spec = tiny_spec()
        db = tmp_path / "cache.db"
        run_sweep(spec, workers=1, cache_dir=f"sqlite:{db}", executor="serial")
        with sqlite3.connect(db) as conn:
            conn.execute("UPDATE results SET params = '{oops' WHERE rowid = 1")
        results = run_sweep(
            spec, workers=1, cache_dir=f"sqlite:{db}", executor="serial",
            progress=True,
        )
        assert len(results) == len(expand_spec(spec))
        assert sum(1 for r in results if not r.from_cache) == 1
        captured = capsys.readouterr()
        assert "corrupt" in captured.out + captured.err


class TestMigration:
    def test_merge_caches_across_backends(self, tmp_path):
        src = make_store(str(tmp_path / "json-cache"))
        results = [fake_result(i) for i in range(4)]
        for result in results:
            src.put(result.cache_key, result)
        dest_spec = f"sqlite:{tmp_path}/dest.db"
        copied, skipped = merge_caches([str(tmp_path / "json-cache")], dest_spec)
        assert (copied, skipped) == (4, 0)
        copied, skipped = merge_caches([str(tmp_path / "json-cache")], dest_spec)
        assert (copied, skipped) == (0, 4)  # idempotent
        dest = make_store(dest_spec)
        assert sorted(dest.keys()) == sorted(r.cache_key for r in results)
        dest.close()

    def test_merge_missing_source_fails(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            merge_caches([str(tmp_path / "nope")], str(tmp_path / "dest"))


class TestQueueStore:
    def test_queue_records_and_uses_store(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        spec = tiny_spec()
        results = run_sweep(
            spec,
            workers=2,
            cache_dir=str(tmp_path / "cache"),
            executor="queue",
            executor_options={"queue_dir": queue_dir, "store": "sqlite"},
        )
        assert len(results) == len(expand_spec(spec))
        queue = WorkQueue(queue_dir)
        assert queue.result_store_name() == "sqlite"
        assert os.path.isfile(os.path.join(queue_dir, "results.db"))
        published = queue.open_results()
        assert len(published.keys()) == len(results)
        published.close()

    def test_queue_defaults_to_json_results_dir(self, tmp_path):
        queue = WorkQueue(str(tmp_path / "queue"))
        assert queue.result_store_name() == DEFAULT_STORE
        store = queue.open_results()
        assert isinstance(store, JsonStore)

    def test_queue_unknown_store_fails_eagerly(self, tmp_path):
        with pytest.raises(RegistryError, match="sqlite"):
            make_executor(
                "queue",
                queue_dir=str(tmp_path / "queue"),
                store="mongodb",
            )
