"""Property-based tests for the HVDB core: identifier mapping, membership
summaries, clustering prediction and fairness metrics."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering.mobility_prediction import predicted_residence_time
from repro.core.identifiers import LogicalAddressSpace
from repro.core.membership import HTSummary, LocalMembership, MNTSummary, MTSummary
from repro.geo.area import Area
from repro.geo.geometry import Point, Vector, distance
from repro.geo.grid import VirtualCircleGrid
from repro.metrics.fairness import coefficient_of_variation, jain_index, peak_to_mean


# ----------------------------------------------------------------------
# identifier mapping
# ----------------------------------------------------------------------
@st.composite
def address_space(draw):
    dimension = draw(st.integers(min_value=2, max_value=6))
    block_cols = 1 << math.ceil(dimension / 2)
    block_rows = 1 << (dimension // 2)
    mesh_cols = draw(st.integers(min_value=1, max_value=3))
    mesh_rows = draw(st.integers(min_value=1, max_value=3))
    grid = VirtualCircleGrid(Area(1000.0, 800.0), block_cols * mesh_cols, block_rows * mesh_rows)
    return LogicalAddressSpace(grid, dimension)


class TestIdentifierProperties:
    @given(address_space(), st.data())
    @settings(max_examples=80)
    def test_vc_to_logical_address_roundtrip(self, space, data):
        col = data.draw(st.integers(min_value=0, max_value=space.grid.cols - 1))
        row = data.draw(st.integers(min_value=0, max_value=space.grid.rows - 1))
        address = space.address_of_vc((col, row))
        assert space.vc_of(address.hid, address.hnid) == (col, row)
        assert 0 <= address.hnid < (1 << space.dimension)
        assert 0 <= address.hid < space.hypercube_count()
        assert space.hid_of_mesh(address.mnid) == address.hid

    @given(address_space())
    @settings(max_examples=40)
    def test_hnid_bijective_within_every_block(self, space):
        for hid in range(space.hypercube_count()):
            hnids = {space.hnid_of(vc) for vc in space.vcs_of_hid(hid)}
            assert hnids == set(range(1 << space.dimension))

    @given(address_space(), st.data())
    @settings(max_examples=80)
    def test_position_maps_to_covering_vc(self, space, data):
        x = data.draw(st.floats(min_value=0.0, max_value=999.9, allow_nan=False))
        y = data.draw(st.floats(min_value=0.0, max_value=799.9, allow_nan=False))
        address = space.address_of_position(Point(x, y))
        assert space.grid.circle(address.vc_coord).contains(Point(x, y))


# ----------------------------------------------------------------------
# membership summaries
# ----------------------------------------------------------------------
group_sets = st.sets(st.integers(min_value=1, max_value=20), max_size=6)


class TestMembershipProperties:
    @given(st.lists(group_sets, max_size=10))
    def test_mnt_summary_counts_match_reports(self, group_lists):
        reports = [LocalMembership(i, groups) for i, groups in enumerate(group_lists)]
        summary = MNTSummary.from_local_reports(0, 0, 0, reports)
        for group in summary.groups():
            expected = sum(1 for groups in group_lists if group in groups)
            assert summary.counts[group] == expected
        assert summary.member_total() == sum(len(g) for g in group_lists)

    @given(st.data())
    def test_ht_summary_merge_commutative_and_idempotent(self, data):
        def ht(d):
            groups = d.draw(
                st.dictionaries(
                    st.integers(min_value=1, max_value=5),
                    st.sets(st.integers(min_value=0, max_value=15), min_size=1, max_size=4),
                    max_size=4,
                )
            )
            return HTSummary(0, groups)

        a, b = ht(data), ht(data)
        ab = a.merge(b)
        ba = b.merge(a)
        assert ab.members_by_group == ba.members_by_group
        assert ab.merge(ab).members_by_group == ab.members_by_group
        # merge only grows the membership view (monotonicity)
        for group, hnids in a.members_by_group.items():
            assert hnids <= ab.members_by_group.get(group, set())

    @given(st.data())
    def test_mt_summary_reflects_latest_ht_per_mesh_node(self, data):
        mt = MTSummary()
        updates = data.draw(
            st.lists(
                st.tuples(
                    st.sampled_from([(0, 0), (1, 0), (0, 1)]),
                    st.dictionaries(
                        st.integers(min_value=1, max_value=4),
                        st.sets(st.integers(min_value=0, max_value=7), min_size=1, max_size=3),
                        max_size=3,
                    ),
                ),
                max_size=12,
            )
        )
        latest = {}
        for mesh_coord, groups in updates:
            mt.update_from_ht(HTSummary(0, groups), mesh_coord)
            latest[mesh_coord] = set(groups.keys())
        for mesh_coord, groups in latest.items():
            for group in groups:
                assert mesh_coord in mt.mesh_nodes_for(group)
        # no group lists a mesh node whose latest update did not contain it
        for group in mt.groups():
            for coord in mt.mesh_nodes_for(group):
                assert group in latest.get(coord, set())


# ----------------------------------------------------------------------
# residence-time prediction
# ----------------------------------------------------------------------
class TestResidencePrediction:
    @given(
        st.floats(min_value=-200.0, max_value=200.0),
        st.floats(min_value=-200.0, max_value=200.0),
        st.floats(min_value=-15.0, max_value=15.0),
        st.floats(min_value=-15.0, max_value=15.0),
    )
    @settings(max_examples=200)
    def test_residence_time_non_negative_and_consistent(self, px, py, vx, vy):
        center = Point(0.0, 0.0)
        radius = 100.0
        position = Point(px, py)
        velocity = Vector(vx, vy)
        t = predicted_residence_time(position, velocity, center, radius)
        assert t >= 0.0
        # simulate forward: while t says we are inside, we must indeed be inside
        if 0.0 < t < 1e5 and distance(position, center) <= radius:
            mid = Point(px + vx * t * 0.5, py + vy * t * 0.5)
            assert distance(mid, center) <= radius + 1e-6
            end = Point(px + vx * t, py + vy * t)
            assert distance(end, center) <= radius + 1e-3 * (1 + abs(vx) + abs(vy))


# ----------------------------------------------------------------------
# fairness indices
# ----------------------------------------------------------------------
loads = st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=50)


class TestFairnessProperties:
    @given(loads)
    def test_jain_bounds(self, values):
        j = jain_index(values)
        if values and any(v > 0 for v in values):
            assert 1.0 / len(values) - 1e-9 <= j <= 1.0 + 1e-9
        else:
            assert j == 1.0

    @given(loads, st.floats(min_value=0.1, max_value=10.0))
    def test_jain_scale_invariant(self, values, factor):
        scaled = [v * factor for v in values]
        assert abs(jain_index(values) - jain_index(scaled)) < 1e-6

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    def test_peak_to_mean_at_least_one(self, values):
        assert peak_to_mean(values) >= 1.0 - 1e-9

    @given(st.floats(min_value=0.1, max_value=1e3), st.integers(min_value=1, max_value=30))
    def test_uniform_loads_perfectly_fair(self, value, count):
        values = [value] * count
        assert jain_index(values) > 0.999
        assert coefficient_of_variation(values) < 1e-6
        assert peak_to_mean(values) < 1.001
