"""Unit tests for the plain-text visualisation helpers."""

import pytest

from repro.clustering.service import ClusterSnapshot
from repro.core.hvdb import HVDBModel
from repro.core.identifiers import LogicalAddressSpace
from repro.geo.area import Area
from repro.geo.grid import VirtualCircleGrid
from repro.metrics.visualization import (
    bar_chart,
    render_delivery_timeline,
    render_hypercube_occupancy,
    render_vc_grid,
    sparkline,
)


def make_space():
    return LogicalAddressSpace(VirtualCircleGrid(Area(1000.0, 1000.0), 8, 8), dimension=4)


def make_model(heads):
    space = make_space()
    snapshot = ClusterSnapshot(
        time=0.0,
        heads=dict(heads),
        members={coord: {ch} for coord, ch in heads.items()},
        node_home={ch: coord for coord, ch in heads.items()},
    )
    return HVDBModel(space, snapshot)


class TestVcGridRendering:
    def test_contains_head_ids_and_placeholders(self):
        space = make_space()
        text = render_vc_grid(space, {(0, 0): 7, (3, 3): 42})
        assert "7" in text
        assert "42" in text
        assert "--" in text
        # one output line per VC row plus header and block separators
        assert len(text.splitlines()) >= space.grid.rows + 1

    def test_block_separators_present(self):
        space = make_space()
        text = render_vc_grid(space, {})
        assert any(line.startswith("=") for line in text.splitlines())


class TestHypercubeRendering:
    def test_occupied_nodes_bracketed(self):
        model = make_model({(0, 0): 1, (1, 0): 2})
        text = render_hypercube_occupancy(model, 0)
        assert "[0000]" in text
        assert "[0001]" in text
        assert " 1111 " in text
        assert "2/16" in text

    def test_empty_hypercube(self):
        model = make_model({(0, 0): 1})
        text = render_hypercube_occupancy(model, 3)
        assert "0/16" in text
        assert "[" not in text.splitlines()[1]


class TestCharts:
    def test_bar_chart_scales_to_peak(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_empty(self):
        assert bar_chart({}) == "(no data)"

    def test_bar_chart_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in text

    def test_sparkline_length_and_extremes(self):
        line = sparkline([0.0, 0.5, 1.0], lo=0.0, hi=1.0)
        assert len(line) == 3
        assert line[0] == " "
        assert line[-1] == "@"

    def test_sparkline_constant_series(self):
        assert sparkline([2.0, 2.0]) == "@@"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_delivery_timeline(self):
        text = render_delivery_timeline([(0.0, 1.0), (10.0, 0.5)], window=10.0)
        assert "min 0.50" in text and "max 1.00" in text
        assert len(text.splitlines()[1]) == 2

    def test_delivery_timeline_empty(self):
        assert render_delivery_timeline([], window=5.0) == "(no delivery data)"
