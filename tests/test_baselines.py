"""Unit / small-integration tests of the baseline multicast protocols."""

import pytest

from repro.baselines.dsm import DSM_PROTOCOL, DsmAgent
from repro.baselines.flooding import FLOODING_PROTOCOL, FloodingMulticastAgent
from repro.baselines.sgm import SGM_PROTOCOL, SgmAgent
from repro.baselines.spbm import SPBM_PROTOCOL, SpbmAgent
from repro.geo.geometry import Point
from repro.simulation.packet import PacketKind
from repro.unicast.router import GeoUnicastAgent

from tests.conftest import make_static_network


def grid_positions(side=4, spacing=200.0, offset=100.0):
    positions = {}
    nid = 0
    for col in range(side):
        for row in range(side):
            positions[nid] = Point(offset + col * spacing, offset + row * spacing)
            nid += 1
    return positions


def build(protocol_cls, side=4, with_geo=False, radio_range=250.0, **agent_kwargs):
    net = make_static_network(grid_positions(side), radio_range=radio_range)
    for node in net.nodes.values():
        if with_geo:
            node.attach_agent(GeoUnicastAgent())
        node.attach_agent(protocol_cls(**agent_kwargs))
    return net


class TestFlooding:
    def test_all_members_receive(self):
        net = build(FloodingMulticastAgent)
        for member in (5, 10, 15):
            net.node(member).join_group(1)
        net.node(0).agent(FLOODING_PROTOCOL).send_multicast(1, "hello")
        net.simulator.run(5.0)
        record = list(net.deliveries.values())[0]
        assert set(record.delivered) == {5, 10, 15}
        assert record.delivery_ratio == 1.0

    def test_every_node_rebroadcasts_once(self):
        net = build(FloodingMulticastAgent)
        net.node(15).join_group(1)
        net.node(0).agent(FLOODING_PROTOCOL).send_multicast(1, "x")
        net.simulator.run(5.0)
        # every node transmits the packet exactly once: N transmissions total
        assert net.stats.data_transmissions == len(net.nodes)

    def test_source_member_delivers_locally(self):
        net = build(FloodingMulticastAgent)
        net.node(0).join_group(1)
        net.node(3).join_group(1)
        net.node(0).agent(FLOODING_PROTOCOL).send_multicast(1, "x")
        net.simulator.run(5.0)
        assert net.node(0).stats.delivered_to_application == 1

    def test_ignores_foreign_packets(self):
        net = build(FloodingMulticastAgent)
        agent = net.node(0).agent(FLOODING_PROTOCOL)
        from repro.simulation.packet import data_packet

        foreign = data_packet("other-protocol", 5, 1, None, 64, 0.0)
        agent.on_packet(foreign, from_node=5)
        assert agent.rebroadcasts == 0


class TestSgm:
    def test_members_receive_via_overlay_tree(self):
        net = build(SgmAgent, with_geo=True)
        for member in (3, 12, 15):
            net.node(member).join_group(1)
        net.node(0).agent(SGM_PROTOCOL).send_multicast(1, "payload")
        net.simulator.run(10.0)
        record = list(net.deliveries.values())[0]
        assert set(record.delivered) == {3, 12, 15}

    def test_no_members_no_forwarding(self):
        net = build(SgmAgent, with_geo=True)
        net.node(0).agent(SGM_PROTOCOL).send_multicast(1, "payload")
        net.simulator.run(5.0)
        assert net.stats.data_transmissions == 0

    def test_data_cost_scales_with_group_not_network(self):
        # SGM unicasts along an overlay tree: with one member the data cost is
        # a single unicast path, far below flooding's N transmissions
        net = build(SgmAgent, with_geo=True)
        net.node(15).join_group(1)
        net.node(0).agent(SGM_PROTOCOL).send_multicast(1, "x")
        net.simulator.run(10.0)
        assert 0 < net.stats.data_transmissions < len(net.nodes)

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            SgmAgent(fanout=0)

    def test_geographic_split_covers_all_destinations(self):
        net = build(SgmAgent, with_geo=True)
        agent = net.node(0).agent(SGM_PROTOCOL)
        destinations = [3, 5, 10, 12, 15]
        clusters = agent._geographic_split(destinations, 3)
        flattened = sorted(d for cluster in clusters for d in cluster)
        assert flattened == sorted(destinations)


class TestDsm:
    def test_position_floods_fill_snapshots(self):
        net = build(DsmAgent, position_update_period=5.0)
        net.start()
        net.simulator.run(12.0)
        agent = net.node(0).agent(DSM_PROTOCOL)
        # after two flood rounds every node's position is known to node 0
        assert len(agent.known_positions) == len(net.nodes)

    def test_members_receive_after_snapshot_converges(self):
        net = build(DsmAgent, position_update_period=5.0)
        for member in (12, 15):
            net.node(member).join_group(1)
        net.start()
        net.simulator.run(12.0)
        net.node(0).agent(DSM_PROTOCOL).send_multicast(1, "data")
        net.simulator.run(10.0)
        record = list(net.deliveries.values())[0]
        assert set(record.delivered) == {12, 15}

    def test_source_tree_reaches_members_only_through_parents(self):
        net = build(DsmAgent, position_update_period=5.0)
        net.start()
        net.simulator.run(12.0)
        agent = net.node(0).agent(DSM_PROTOCOL)
        tree = agent._compute_source_tree([15])
        # the tree is a child-map keyed by stringified ids, rooted at node 0
        assert str(0) in tree
        all_children = [c for kids in tree.values() for c in kids]
        assert 15 in all_children

    def test_control_overhead_scales_with_nodes(self):
        small = build(DsmAgent, side=3, position_update_period=5.0)
        large = build(DsmAgent, side=5, position_update_period=5.0)
        small.start()
        large.start()
        small.simulator.run(11.0)
        large.simulator.run(11.0)
        per_node_small = small.stats.control_transmissions / len(small.nodes)
        per_node_large = large.stats.control_transmissions / len(large.nodes)
        # each flood costs O(N) transmissions, so per-node cost grows with N
        assert per_node_large > per_node_small

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            DsmAgent(position_update_period=0.0)


class TestSpbm:
    def test_membership_announcements_sent(self):
        net = build(SpbmAgent, with_geo=True, announce_period=4.0)
        net.node(5).join_group(1)
        net.start()
        net.simulator.run(10.0)
        assert net.stats.control_transmissions > 0
        agent = net.node(5).agent(SPBM_PROTOCOL)
        assert agent.announcements_sent >= 2

    def test_square_hierarchy_geometry(self):
        net = build(SpbmAgent, with_geo=True, levels=3)
        agent = net.node(0).agent(SPBM_PROTOCOL)
        pos = Point(100.0, 100.0)
        level0 = agent._square_of(pos, 0)
        level2 = agent._square_of(pos, 2)
        assert level0[0] == 0 and level2[0] == 2
        # level 2 is the whole area: single square
        assert level2[1:] == (0, 0)
        children = agent._child_squares((1, 0, 0))
        assert len(children) == 4
        assert agent._child_squares((0, 0, 0)) == []

    def test_members_eventually_receive_data(self):
        net = build(SpbmAgent, with_geo=True, announce_period=3.0)
        for member in (10, 15):
            net.node(member).join_group(1)
        net.start()
        net.simulator.run(15.0)     # let membership aggregate
        net.node(0).agent(SPBM_PROTOCOL).send_multicast(1, "data")
        net.simulator.run(10.0)
        record = list(net.deliveries.values())[0]
        assert len(record.delivered) >= 1

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            SpbmAgent(levels=0)
