"""Unit tests for mobility prediction and the clustering layer."""

import pytest

from repro.clustering.cluster import Cluster, ClusterHeadCandidate, elect_cluster_head
from repro.clustering.mobility_prediction import (
    STATIONARY_RESIDENCE_TIME,
    predicted_residence_time,
    residence_probability,
)
from repro.clustering.service import ClusteringService
from repro.geo.area import Area
from repro.geo.geometry import Point, Vector
from repro.geo.grid import VirtualCircleGrid
from repro.mobility.static import StaticMobility
from repro.simulation.mac import IdealMac
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import MobileNode
from repro.simulation.radio import UnitDiskRadio


CENTER = Point(100.0, 100.0)
RADIUS = 50.0


class TestResidenceTimePrediction:
    def test_stationary_inside(self):
        t = predicted_residence_time(Point(100.0, 100.0), Vector(0.0, 0.0), CENTER, RADIUS)
        assert t == STATIONARY_RESIDENCE_TIME

    def test_stationary_outside(self):
        t = predicted_residence_time(Point(200.0, 100.0), Vector(0.0, 0.0), CENTER, RADIUS)
        assert t == 0.0

    def test_moving_from_center(self):
        # from the centre at 10 m/s it takes radius/speed = 5 s to exit
        t = predicted_residence_time(CENTER, Vector(10.0, 0.0), CENTER, RADIUS)
        assert t == pytest.approx(5.0)

    def test_moving_from_edge_inward(self):
        # entering at the west edge moving east: crosses the full diameter
        t = predicted_residence_time(Point(50.0, 100.0), Vector(10.0, 0.0), CENTER, RADIUS)
        assert t == pytest.approx(10.0)

    def test_moving_from_edge_outward(self):
        t = predicted_residence_time(Point(150.0, 100.0), Vector(10.0, 0.0), CENTER, RADIUS)
        assert t == pytest.approx(0.0)

    def test_outside_heading_through_circle(self):
        # starts outside, will cross the circle: residence equals the chord time
        t = predicted_residence_time(Point(0.0, 100.0), Vector(10.0, 0.0), CENTER, RADIUS)
        assert t == pytest.approx(10.0)

    def test_outside_heading_away(self):
        t = predicted_residence_time(Point(200.0, 100.0), Vector(10.0, 0.0), CENTER, RADIUS)
        assert t == 0.0

    def test_faster_node_exits_sooner(self):
        slow = predicted_residence_time(CENTER, Vector(1.0, 0.0), CENTER, RADIUS)
        fast = predicted_residence_time(CENTER, Vector(20.0, 0.0), CENTER, RADIUS)
        assert fast < slow

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            predicted_residence_time(CENTER, Vector(1.0, 0.0), CENTER, 0.0)

    def test_residence_probability_ordering_preserved(self):
        p_slow = residence_probability(CENTER, Vector(1.0, 0.0), CENTER, RADIUS, horizon=30.0)
        p_fast = residence_probability(CENTER, Vector(20.0, 0.0), CENTER, RADIUS, horizon=30.0)
        assert p_fast < p_slow
        assert 0.0 <= p_fast <= 1.0 and 0.0 <= p_slow <= 1.0

    def test_residence_probability_invalid_horizon(self):
        with pytest.raises(ValueError):
            residence_probability(CENTER, Vector(1.0, 0.0), CENTER, RADIUS, horizon=0.0)


class TestElection:
    def test_longest_residence_wins(self):
        winner = elect_cluster_head(
            [
                ClusterHeadCandidate(1, residence_time=10.0, distance_to_vcc=5.0),
                ClusterHeadCandidate(2, residence_time=40.0, distance_to_vcc=30.0),
            ]
        )
        assert winner == 2

    def test_distance_breaks_ties(self):
        winner = elect_cluster_head(
            [
                ClusterHeadCandidate(1, residence_time=10.0, distance_to_vcc=25.0),
                ClusterHeadCandidate(2, residence_time=10.0, distance_to_vcc=5.0),
            ]
        )
        assert winner == 2

    def test_node_id_final_tiebreak(self):
        winner = elect_cluster_head(
            [
                ClusterHeadCandidate(9, residence_time=10.0, distance_to_vcc=5.0),
                ClusterHeadCandidate(2, residence_time=10.0, distance_to_vcc=5.0),
            ]
        )
        assert winner == 2

    def test_no_candidates(self):
        assert elect_cluster_head([]) is None

    def test_hysteresis_keeps_incumbent(self):
        candidates = [
            ClusterHeadCandidate(1, residence_time=10.0, distance_to_vcc=5.0),
            ClusterHeadCandidate(2, residence_time=11.0, distance_to_vcc=3.0),
        ]
        # challenger is better but not by more than 50%
        assert elect_cluster_head(candidates, current_head=1, hysteresis=0.5) == 1
        # without hysteresis the challenger takes over
        assert elect_cluster_head(candidates, current_head=1, hysteresis=0.0) == 2

    def test_hysteresis_overcome_by_much_better_challenger(self):
        candidates = [
            ClusterHeadCandidate(1, residence_time=10.0, distance_to_vcc=5.0),
            ClusterHeadCandidate(2, residence_time=30.0, distance_to_vcc=3.0),
        ]
        assert elect_cluster_head(candidates, current_head=1, hysteresis=0.5) == 2

    def test_departed_incumbent_replaced(self):
        candidates = [ClusterHeadCandidate(3, residence_time=5.0, distance_to_vcc=10.0)]
        assert elect_cluster_head(candidates, current_head=99, hysteresis=0.5) == 3

    def test_invalid_hysteresis(self):
        with pytest.raises(ValueError):
            elect_cluster_head(
                [ClusterHeadCandidate(1, 1.0, 1.0)], current_head=None, hysteresis=1.0
            )

    def test_cluster_dataclass(self):
        grid = VirtualCircleGrid(Area(100.0, 100.0), 2, 2)
        cluster = Cluster(circle=grid.circle((0, 0)), head=4, members={4, 5})
        assert cluster.coord == (0, 0)
        assert cluster.has_head
        assert cluster.size == 2
        assert cluster.is_member(5)
        assert cluster.member_list() == [4, 5]


def build_service(positions, ch_capable=None, hysteresis=0.2):
    area = Area(1000.0, 1000.0)
    node_ids = sorted(positions)
    mobility = StaticMobility(area, node_ids, positions=positions, seed=1)
    network = Network(
        NetworkConfig(area=area, radio=UnitDiskRadio(250.0), mac=IdealMac(), seed=1), mobility
    )
    for node_id in node_ids:
        capable = True if ch_capable is None else node_id in ch_capable
        network.add_node(MobileNode(node_id, ch_capable=capable))
    grid = VirtualCircleGrid(area, 4, 4)
    service = ClusteringService(network, grid, update_interval=1.0, hysteresis=hysteresis)
    return network, grid, service


class TestClusteringService:
    def test_each_occupied_vc_gets_a_head(self):
        positions = {
            0: Point(100.0, 100.0),   # VC (0,0)
            1: Point(120.0, 130.0),   # VC (0,0)
            2: Point(600.0, 600.0),   # VC (2,2)
        }
        _, _, service = build_service(positions)
        heads = service.cluster_heads()
        assert set(heads.keys()) == {(0, 0), (2, 2)}
        assert heads[(2, 2)] == 2
        assert heads[(0, 0)] in (0, 1)

    def test_ch_incapable_nodes_never_elected(self):
        positions = {0: Point(100.0, 100.0), 1: Point(120.0, 130.0)}
        _, _, service = build_service(positions, ch_capable={1})
        assert service.cluster_heads()[(0, 0)] == 1
        assert not service.is_cluster_head(0)
        assert service.is_cluster_head(1)

    def test_empty_vc_has_no_head(self):
        positions = {0: Point(100.0, 100.0)}
        _, _, service = build_service(positions)
        assert service.cluster_head((3, 3)) is None

    def test_cluster_of_and_head_of_node(self):
        positions = {0: Point(100.0, 100.0), 1: Point(130.0, 100.0)}
        _, _, service = build_service(positions)
        assert service.cluster_of(0) == (0, 0)
        assert service.head_of_node(0) == service.head_of_node(1)

    def test_members_of(self):
        positions = {0: Point(100.0, 100.0), 1: Point(130.0, 100.0), 2: Point(900.0, 900.0)}
        _, _, service = build_service(positions)
        assert service.members_of((0, 0)) == {0, 1}
        assert service.members_of((3, 3)) == {2}

    def test_failed_node_excluded(self):
        positions = {0: Point(100.0, 100.0), 1: Point(130.0, 100.0)}
        network, _, service = build_service(positions)
        head = service.head_of_node(0)
        network.nodes[head].fail()
        service.update()
        new_head = service.cluster_head((0, 0))
        assert new_head is not None and new_head != head

    def test_snapshot_contents(self):
        positions = {0: Point(100.0, 100.0), 2: Point(600.0, 600.0)}
        _, _, service = build_service(positions)
        snap = service.snapshot()
        assert snap.head_of((0, 0)) == 0
        assert snap.cluster_of(2) == (2, 2)
        assert set(snap.cluster_head_ids()) == {0, 2}
        assert snap.occupied_coords() == [(0, 0), (2, 2)]

    def test_serving_head_uses_overlap(self):
        # node 1 sits alone (not CH-capable) in VC (1,0); the CH of VC (0,0)
        # covers it through the circle overlap
        positions = {0: Point(240.0, 120.0), 1: Point(260.0, 120.0)}
        _, _, service = build_service(positions, ch_capable={0})
        assert service.head_of_node(1) is None
        assert service.serving_head(1) == 0

    def test_listener_and_periodic_updates(self):
        positions = {0: Point(100.0, 100.0)}
        network, _, service = build_service(positions)
        snapshots = []
        service.add_listener(lambda snap: snapshots.append(snap))
        service.start()
        network.simulator.run(5.0)
        assert len(snapshots) == 5
        service.stop()
        network.simulator.run(5.0)
        assert len(snapshots) == 5

    def test_start_twice_raises(self):
        positions = {0: Point(100.0, 100.0)}
        _, _, service = build_service(positions)
        service.start()
        with pytest.raises(RuntimeError):
            service.start()

    def test_invalid_update_interval(self):
        positions = {0: Point(100.0, 100.0)}
        network, grid, _ = build_service(positions)
        with pytest.raises(ValueError):
            ClusteringService(network, grid, update_interval=0.0)

    def test_stable_election_is_deterministic(self):
        positions = {0: Point(100.0, 100.0), 1: Point(140.0, 100.0)}
        _, _, service = build_service(positions)
        first = service.cluster_head((0, 0))
        for _ in range(5):
            service.update()
        assert service.cluster_head((0, 0)) == first
        assert service.head_changes == 0
