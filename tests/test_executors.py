"""Tests of pluggable executor backends and the file-lease work queue.

Covers the guarantees the execution layer rests on: all four backends are
registered and unknown names fail eagerly with alternatives (RegistryError
UX), every backend produces byte-identical artifacts on the same grid, a
warm cache populated under one executor replays with zero executions under
every other, the queue's lease protocol (exclusive O_EXCL claims,
heartbeat liveness, stale-lease reclaim after a worker crash, no double
execution under concurrent workers), remote failure reporting, and that
serial/queue emit the same progress lines as the process pool.
"""

import json
import os
import re
import threading
import time

import pytest

from repro.experiments.executors import (
    EXECUTORS,
    WorkQueue,
    make_executor,
    run_worker,
)
from repro.experiments.orchestrator import (
    ResultCache,
    RunResult,
    SweepError,
    SweepSpec,
    expand_spec,
    export_csv,
    register_hook,
    run_sweep,
)
from repro.experiments.scenarios import ScenarioConfig
from repro.registry import RegistryError


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=12,
            area_size=500.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=4,
            traffic_start=3.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [10, 14]},
        seeds=(1, 2),
        duration=10.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


def run_with_queue(spec, queue_dir, n_workers=2, **sweep_kwargs):
    """Drive ``spec`` through the queue backend with in-thread workers.

    The workers are plain ``run_worker`` loops in background threads (the
    hermetic stand-in for `python -m repro.experiments worker` processes);
    they exit once the driver closes the queue.
    """
    threads = [
        threading.Thread(
            target=run_worker,
            kwargs=dict(
                queue_dir=queue_dir,
                worker_id=f"w{i}",
                poll_interval=0.02,
                stale_after=30.0,
            ),
        )
        for i in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    try:
        return run_sweep(
            spec,
            workers=0,
            executor="queue",
            executor_options={"queue_dir": queue_dir, "poll_interval": 0.02},
            **sweep_kwargs,
        )
    finally:
        # run_sweep closes the queue on success *and* failure, but make
        # the sentinel unconditional so a test bug cannot hang the join
        WorkQueue(queue_dir).close()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)


class TestExecutorRegistry:
    def test_all_five_backends_registered(self):
        assert {"serial", "process", "thread", "queue", "tcp"} <= set(
            EXECUTORS.names()
        )

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(RegistryError, match="serial.*thread|serial, thread"):
            make_executor("warp")

    def test_run_sweep_rejects_unknown_executor_eagerly(self, tmp_path):
        # like a typo'd protocol: fail before the cache is even created
        cache_dir = str(tmp_path / "cache")
        with pytest.raises(RegistryError, match="warp"):
            run_sweep(tiny_spec(seeds=(1,)), cache_dir=cache_dir, executor="warp")
        assert not os.path.exists(cache_dir)

    def test_spec_level_executor_field(self):
        results = run_sweep(tiny_spec(seeds=(1,), executor="serial"))
        assert len(results) == 2
        with pytest.raises(RegistryError, match="warp"):
            run_sweep(tiny_spec(seeds=(1,), executor="warp"))

    def test_call_site_overrides_spec_field(self):
        # the kwarg wins, so a broken spec default can be overridden
        results = run_sweep(tiny_spec(seeds=(1,), executor="warp"), executor="serial")
        assert len(results) == 2


class TestBackendEquivalence:
    def test_all_backends_byte_identical_artifacts(self, tmp_path):
        from test_net import run_with_tcp

        spec = tiny_spec()
        blobs = {}
        for backend in ("serial", "thread", "process", "queue", "tcp"):
            cache_dir = str(tmp_path / f"cache-{backend}")
            if backend == "queue":
                results = run_with_queue(
                    spec, str(tmp_path / "queue"), cache_dir=cache_dir
                )
            elif backend == "tcp":
                results = run_with_tcp(spec, cache_dir=cache_dir)
            else:
                results = run_sweep(
                    spec, workers=2, cache_dir=cache_dir, executor=backend
                )
            assert all(not r.from_cache for r in results)
            path = str(tmp_path / f"{backend}.csv")
            export_csv(results, path)
            with open(path, "rb") as fh:
                blobs[backend] = fh.read()
        assert blobs["thread"] == blobs["serial"]
        assert blobs["process"] == blobs["serial"]
        assert blobs["queue"] == blobs["serial"]
        assert blobs["tcp"] == blobs["serial"]

    def test_queue_results_cache_is_reused_and_force_discards_it(self, tmp_path):
        spec = tiny_spec(grid={}, seeds=(1,))
        (run,) = expand_spec(spec)
        queue_dir = str(tmp_path / "queue")
        run_with_queue(spec, queue_dir, n_workers=1)

        # poison the queue's stored result to tell replay from re-execution
        queue = WorkQueue(queue_dir)
        path = os.path.join(queue.results_dir, f"{run.cache_key()}.json")
        with open(path, encoding="utf-8") as fh:
            stored = json.load(fh)
        stored["metrics"]["pdr"] = -123.0
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(stored, fh)

        # a normal sweep replays the queue's results cache, workerless
        (replayed,) = run_sweep(
            spec,
            workers=0,
            executor="queue",
            executor_options={"queue_dir": queue_dir, "poll_interval": 0.02},
        )
        assert replayed.metrics["pdr"] == -123.0
        assert not replayed.from_cache  # executed on this sweep's behalf

        # --force must discard the stored result and re-execute on a worker
        (forced,) = run_with_queue(spec, queue_dir, n_workers=1, force=True)
        assert forced.metrics["pdr"] != -123.0

    def test_warm_cache_replays_under_every_backend(self, tmp_path):
        spec = tiny_spec()
        cache_dir = str(tmp_path / "cache")
        reference = run_sweep(spec, workers=1, cache_dir=cache_dir, executor="serial")
        for backend in ("process", "thread", "queue", "tcp"):
            options = (
                {"queue_dir": str(tmp_path / "queue")} if backend == "queue" else {}
            )
            # no workers attached anywhere: with zero cache misses the
            # queue backend must not need any (and tcp never binds)
            replay = run_sweep(
                spec,
                workers=0,
                cache_dir=cache_dir,
                executor=backend,
                executor_options=options,
            )
            assert all(r.from_cache for r in replay)
            assert [r.metrics for r in replay] == [r.metrics for r in reference]


class TestLeaseProtocol:
    def test_claim_is_exclusive(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        assert queue.claim("t1", "a", stale_after=30.0)
        assert not queue.claim("t1", "b", stale_after=30.0)

    def test_stale_lease_is_reclaimed(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        assert queue.claim("t1", "dead", stale_after=30.0)
        stale = time.time() - 100.0
        os.utime(queue._claim_path("t1"), (stale, stale))
        assert queue.claim("t1", "rescuer", stale_after=5.0)
        with open(queue._claim_path("t1"), encoding="utf-8") as fh:
            assert fh.read() == "rescuer"

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        assert queue.claim("t1", "busy", stale_after=30.0)
        stale = time.time() - 100.0
        os.utime(queue._claim_path("t1"), (stale, stale))
        queue.heartbeat("t1", "busy")
        assert not queue.claim("t1", "thief", stale_after=5.0)

    def test_heartbeat_by_dispossessed_worker_raises(self, tmp_path):
        # a stalled worker whose lease was stolen must get the OSError
        # (stopping its heartbeat thread), not refresh the new owner's
        # claim as if it were its own
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        assert queue.claim("t1", "stalled", stale_after=30.0)
        stale = time.time() - 100.0
        os.utime(queue._claim_path("t1"), (stale, stale))
        assert queue.claim("t1", "thief", stale_after=5.0)
        with pytest.raises(OSError, match="no longer held"):
            queue.heartbeat("t1", "stalled")

    def test_release_by_dispossessed_worker_is_a_noop(self, tmp_path):
        # ... and its release must not unlink the new owner's claim,
        # which would expose the task to a third claimer mid-execution
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        assert queue.claim("t1", "stalled", stale_after=30.0)
        stale = time.time() - 100.0
        os.utime(queue._claim_path("t1"), (stale, stale))
        assert queue.claim("t1", "thief", stale_after=5.0)
        queue.release("t1", "stalled")
        assert queue.claim_owner("t1") == "thief"
        queue.release("t1", "thief")
        assert queue.claim_owner("t1") is None

    def test_release_allows_reclaim(self, tmp_path):
        queue = WorkQueue(str(tmp_path))
        queue.ensure()
        assert queue.claim("t1", "a", stale_after=30.0)
        queue.release("t1", "a")
        assert queue.claim("t1", "b", stale_after=30.0)

    def test_concurrent_same_key_cache_puts_are_safe(self, tmp_path):
        # both sides of a reclaimed stale lease may publish the same
        # deterministic result; the unique tmp names mean neither rename
        # can crash the other, and the entry stays valid JSON
        cache = ResultCache(str(tmp_path / "results"))
        result = RunResult(
            run_id="r", params={}, seed=1, duration=1.0, metrics={"pdr": 1.0}
        )
        cache.put("k", result)
        cache.put("k", result)
        assert cache.get("k").metrics == {"pdr": 1.0}
        leftovers = [
            name for name in os.listdir(str(tmp_path / "results")) if ".tmp" in name
        ]
        assert leftovers == []


class TestWorkerFaultPaths:
    def test_crashed_workers_run_is_reclaimed_and_executed(self, tmp_path):
        # a worker died mid-run: its lease is held but heartbeat-stale and
        # no result was published.  A fresh worker must steal the lease,
        # execute the run and publish the result.
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.ensure()
        (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
        task_id = run.cache_key()
        queue.enqueue(task_id, run)
        assert queue.claim(task_id, "dead", stale_after=30.0)
        stale = time.time() - 100.0
        os.utime(queue._claim_path(task_id), (stale, stale))

        executed = run_worker(
            queue_dir,
            worker_id="rescuer",
            poll_interval=0.01,
            stale_after=5.0,
            max_tasks=1,
        )
        assert executed == 1
        result = ResultCache(queue.results_dir).get(task_id)
        assert result is not None and result.run_id == run.run_id
        assert queue.task_ids() == []
        assert not os.path.exists(queue._claim_path(task_id))

    def test_two_concurrent_workers_never_double_execute(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.ensure()
        runs = expand_spec(tiny_spec(grid={"n_nodes": [10, 12, 14]}, seeds=(1, 2)))
        for run in runs:
            queue.enqueue(run.cache_key(), run)

        counts = {}
        lock = threading.Lock()

        def counting_execute(run):
            with lock:
                counts[run.run_id] = counts.get(run.run_id, 0) + 1
            time.sleep(0.01)  # widen the claim/execute race window
            return RunResult(
                run_id=run.run_id,
                params=dict(run.params),
                seed=run.seed,
                duration=run.duration,
                metrics={"pdr": 1.0},
                cache_key=run.cache_key(),
            )

        executed_counts = []

        def worker(index):
            executed_counts.append(
                run_worker(
                    queue_dir,
                    worker_id=f"w{index}",
                    poll_interval=0.01,
                    stale_after=30.0,
                    execute=counting_execute,
                )
            )

        threads = [threading.Thread(target=worker, args=(i,)) for i in (1, 2)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while queue.task_ids() and time.monotonic() < deadline:
            time.sleep(0.02)
        queue.close()
        for thread in threads:
            thread.join(timeout=30)
        assert queue.task_ids() == []
        assert counts == {run.run_id: 1 for run in runs}
        assert sum(executed_counts) == len(runs)

    def test_interrupted_worker_leaves_task_for_reclaim(self, tmp_path):
        # Ctrl-C detaching a worker mid-run publishes neither result nor
        # error; the task file must survive so another worker re-claims
        # the run instead of the sweep losing it forever
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.ensure()
        (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
        task_id = run.cache_key()
        queue.enqueue(task_id, run)

        def interrupt(run):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_worker(
                queue_dir, worker_id="w1", poll_interval=0.01, execute=interrupt
            )
        assert queue.task_ids() == [task_id]
        assert queue.claim_owner(task_id) is None  # lease released immediately
        assert os.listdir(queue.errors_dir) == []

        executed = run_worker(
            queue_dir, worker_id="w2", poll_interval=0.01, max_tasks=1
        )
        assert executed == 1
        assert ResultCache(queue.results_dir).get(task_id) is not None

    def test_dispossessed_worker_does_not_clobber_the_new_owner(self, tmp_path):
        # a worker that stalls past stale_after, loses its lease, then
        # fails must not publish the failure or delete the task the new
        # owner is still executing
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.ensure()
        (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
        task_id = run.cache_key()
        queue.enqueue(task_id, run)

        def stalled_execute(r):
            # simulate the stall + steal: the lease changes hands while
            # this worker is still executing, then its run fails late
            queue.release(task_id)
            assert queue.claim(task_id, "thief", stale_after=30.0)
            raise RuntimeError("stalled worker finishing late")

        returns = []
        victim = threading.Thread(
            target=lambda: returns.append(
                run_worker(
                    queue_dir,
                    worker_id="victim",
                    poll_interval=0.01,
                    execute=stalled_execute,
                )
            )
        )
        victim.start()
        deadline = time.monotonic() + 30.0
        while queue.claim_owner(task_id) != "thief" and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.1)  # let the victim's failure path run its course
        assert os.listdir(queue.errors_dir) == []      # no spurious failure
        assert queue.task_ids() == [task_id]           # task intact for the thief
        assert queue.claim_owner(task_id) == "thief"   # lease untouched

        # the thief completes the run; the victim drains out cleanly
        result = RunResult(
            run_id=run.run_id, params={}, seed=1, duration=1.0, metrics={"pdr": 1.0}
        )
        ResultCache(queue.results_dir).put(task_id, result)
        queue.finish(task_id)
        queue.release(task_id, "thief")
        queue.close()
        victim.join(timeout=30)
        assert not victim.is_alive()
        assert returns == [0]

    def test_fully_cached_sweep_still_closes_queue_for_external_workers(
        self, tmp_path
    ):
        # zero pending runs means map_runs never executes, but externally
        # attached workers are still waiting on the closed sentinel
        spec = tiny_spec(grid={}, seeds=(1,))
        cache_dir = str(tmp_path / "cache")
        run_sweep(spec, cache_dir=cache_dir, executor="serial")

        queue_dir = str(tmp_path / "queue")
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(queue_dir=queue_dir, worker_id="w", poll_interval=0.02),
        )
        worker.start()
        replay = run_sweep(
            spec,
            workers=0,
            cache_dir=cache_dir,
            executor="queue",
            executor_options={"queue_dir": queue_dir, "poll_interval": 0.02},
        )
        assert all(r.from_cache for r in replay)
        worker.join(timeout=30)
        assert not worker.is_alive()

    def test_stale_error_from_a_dead_sweep_does_not_fail_a_retry(self, tmp_path):
        # a previous driver died after a worker published a failure but
        # before consuming it; the retry sweep must clear the stale error
        # and re-execute instead of reporting the old failure
        spec = tiny_spec(grid={}, seeds=(1,))
        (run,) = expand_spec(spec)
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.ensure()
        queue.record_error(run.cache_key(), run.run_id, RuntimeError("old sweep"))

        results = run_with_queue(spec, queue_dir, n_workers=1)
        assert [r.run_id for r in results] == [run.run_id]
        assert os.listdir(queue.errors_dir) == []

    def test_duplicate_cache_keys_recorded_under_each_runs_identity(self, tmp_path):
        # a pure label axis expands to runs with identical configs (one
        # shared cache key) but distinct run ids; the queue backend
        # executes once and must stamp each recorded copy with its own
        # identity, byte-matching an in-process backend's artifacts
        spec = tiny_spec(
            grid={"variant": [{"variant": "a"}, {"variant": "b"}]}, seeds=(1,)
        )
        runs = expand_spec(spec)
        assert len({run.cache_key() for run in runs}) == 1
        reference = run_sweep(spec, executor="serial")
        queued = run_with_queue(spec, str(tmp_path / "queue"), n_workers=1)
        assert [r.run_id for r in queued] == [r.run_id for r in reference]
        assert [r.params for r in queued] == [r.params for r in reference]
        ref_csv, queue_csv = str(tmp_path / "ref.csv"), str(tmp_path / "queue.csv")
        export_csv(reference, ref_csv)
        export_csv(queued, queue_csv)
        with open(ref_csv, "rb") as fh:
            ref_bytes = fh.read()
        with open(queue_csv, "rb") as fh:
            assert fh.read() == ref_bytes

    def test_remote_failure_is_reported_and_consumed(self, tmp_path):
        @register_hook("executor_explode")
        def _explode(scenario):
            raise RuntimeError("boom from the worker")

        spec = tiny_spec(seeds=(1,), during_run="executor_explode")
        queue_dir = str(tmp_path / "queue")
        with pytest.raises(SweepError, match="boom from the worker"):
            run_with_queue(spec, queue_dir, n_workers=1)
        # the failure was consumed (a later sweep retries) and nothing
        # remains queued or leased
        queue = WorkQueue(queue_dir)
        assert os.listdir(queue.errors_dir) == []
        assert queue.task_ids() == []


class TestChurnCounters:
    """The queue's robustness counters (satellites of the tcp subsystem)."""

    def test_reclaim_is_recorded_and_counted(self, tmp_path):
        # a crashed worker's stale lease is broken by a rescuer: the
        # reclaim event must feed every churn counter
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.ensure()
        (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
        task_id = run.cache_key()
        queue.enqueue(task_id, run)
        assert queue.claim(task_id, "dead", stale_after=30.0)
        stale = time.time() - 100.0
        os.utime(queue._claim_path(task_id), (stale, stale))

        executed = run_worker(
            queue_dir,
            worker_id="rescuer",
            poll_interval=0.01,
            stale_after=5.0,
            max_tasks=1,
        )
        assert executed == 1
        stats = queue.churn_stats()
        assert stats.leases_reclaimed == 1
        assert stats.runs_reexecuted == 1
        assert stats.workers_lost == 1      # "dead" lost its lease
        assert stats.workers_seen >= 1      # "rescuer" registered itself
        assert "1 lease(s) reclaimed" in stats.describe()

    def test_counters_are_windowed_by_sweep_epoch(self, tmp_path):
        # events left behind by an earlier sweep in a reused queue dir
        # must not be re-counted by the next sweep's epoch window
        queue_dir = str(tmp_path / "queue")
        queue = WorkQueue(queue_dir)
        queue.ensure()
        queue.register_worker("w-old")
        queue.record_reclaim("t-old", "dead", "rescuer")
        assert queue.churn_stats(since=0.0)
        later = queue._fs_now() + 3600.0
        assert not queue.churn_stats(since=later)

    def test_uneventful_queue_sweep_reports_only_workers_seen(self, tmp_path):
        queue_dir = str(tmp_path / "queue")
        run_with_queue(tiny_spec(grid={}, seeds=(1,)), queue_dir, n_workers=2)
        stats = WorkQueue(queue_dir).churn_stats()
        assert stats.leases_reclaimed == 0
        assert stats.workers_lost == 0
        assert stats.runs_reexecuted == 0
        assert stats.workers_seen == 2


def _progress_lines(capsys):
    return [line for line in capsys.readouterr().err.splitlines() if line]


def _per_run_ids(lines, total):
    ids = []
    for line in lines:
        match = re.search(rf"\(\d+/{total}\) (\S+)", line)
        if match:
            ids.append(match.group(1))
    return ids


class TestProgressParity:
    """serial/queue must emit the same progress stream as the process pool."""

    def run_and_capture(self, capsys, backend, tmp_path):
        spec = tiny_spec()
        cache_dir = str(tmp_path / f"cache-{backend}")
        if backend == "queue":
            run_with_queue(
                spec, str(tmp_path / "queue"), cache_dir=cache_dir, progress=True
            )
        else:
            run_sweep(
                spec, workers=2, cache_dir=cache_dir, executor=backend, progress=True
            )
        return _progress_lines(capsys)

    @pytest.mark.parametrize("backend", ["serial", "process", "queue"])
    def test_backend_emits_full_progress_stream(self, capsys, tmp_path, backend):
        lines = self.run_and_capture(capsys, backend, tmp_path)
        schedule = [line for line in lines if "to execute on" in line]
        assert len(schedule) == 1
        assert f"[{backend}" in schedule[0]
        assert "4 runs: 0 cache hits, 4 to execute on" in schedule[0]
        assert sorted(_per_run_ids(lines, 4)) == sorted(
            run.run_id for run in expand_spec(tiny_spec())
        )
        assert any("done: 0 cached + 4 executed" in line for line in lines)

    def test_progress_false_is_silent(self, capsys, tmp_path):
        run_sweep(
            tiny_spec(seeds=(1,)),
            cache_dir=str(tmp_path / "cache"),
            executor="serial",
            progress=False,
        )
        assert _progress_lines(capsys) == []

    def test_progress_false_silences_spawned_queue_workers_too(
        self, capfd, tmp_path
    ):
        # the only test spawning a real `python -m repro.experiments
        # worker` subprocess: it inherits stderr (capfd sees it), and a
        # progress-suppressed sweep must stay silent end to end
        results = run_sweep(
            tiny_spec(grid={}, seeds=(1,)),
            workers=1,
            cache_dir=str(tmp_path / "cache"),
            executor="queue",
            executor_options={
                "queue_dir": str(tmp_path / "queue"),
                "poll_interval": 0.05,
            },
            progress=False,
        )
        assert len(results) == 1 and not results[0].from_cache
        out, err = capfd.readouterr()
        assert out == "" and err == ""


class TestCliSurface:
    def test_executors_subcommand_lists_backends(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["executors"]) == 0
        out = capsys.readouterr().out
        for name in ("serial", "process", "thread", "queue", "tcp"):
            assert name in out

    def test_run_rejects_unknown_executor(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "smoke", "--executor", "warp", "--format", "none"]) == 2
        err = capsys.readouterr().err
        assert "warp" in err and "serial" in err

    def test_worker_subcommand_max_tasks_zero_exits(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        queue_dir = str(tmp_path / "queue")
        assert main(["worker", "--queue-dir", queue_dir, "--max-tasks", "0"]) == 0
        assert "executed 0 run(s)" in capsys.readouterr().out
