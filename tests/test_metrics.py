"""Unit tests for the metrics layer."""

import pytest

from repro.geo.geometry import Point
from repro.metrics.availability import compute_availability, windowed_delivery_ratio
from repro.metrics.collectors import collect_metrics, format_table
from repro.metrics.delivery import compute_delivery_metrics
from repro.metrics.fairness import (
    coefficient_of_variation,
    compute_load_balance,
    forwarding_loads,
    jain_index,
    peak_to_mean,
)
from repro.metrics.overhead import compute_overhead_metrics
from repro.simulation.packet import control_packet, data_packet

from tests.conftest import make_static_network


def ledger_network(records):
    """Network with a synthetic delivery ledger.

    ``records`` is a list of (group, sent_at, intended, delivered_map).
    """
    net = make_static_network({0: Point(10, 10), 1: Point(100, 10)})
    for group, sent_at, intended, delivered in records:
        packet = data_packet("p", source=99, group=group, payload=None, size_bytes=10, now=sent_at)
        net.register_data_packet(packet, intended)
        record = net.deliveries[packet.uid]
        record.sent_at = sent_at
        for node, t in delivered.items():
            record.delivered[node] = t
    return net


class TestDeliveryMetrics:
    def test_ratio_and_delays(self):
        net = ledger_network(
            [
                (1, 0.0, [1, 2], {1: 0.1, 2: 0.3}),
                (1, 1.0, [1, 2], {1: 1.2}),
            ]
        )
        metrics = compute_delivery_metrics(net)
        assert metrics.packets_originated == 2
        assert metrics.intended_deliveries == 4
        assert metrics.achieved_deliveries == 3
        assert metrics.delivery_ratio == pytest.approx(0.75)
        assert metrics.mean_delay == pytest.approx((0.1 + 0.3 + 0.2) / 3)
        assert metrics.max_delay == pytest.approx(0.3)

    def test_group_filter(self):
        net = ledger_network(
            [
                (1, 0.0, [1], {1: 0.1}),
                (2, 0.0, [1, 2], {}),
            ]
        )
        assert compute_delivery_metrics(net, group=1).delivery_ratio == 1.0
        assert compute_delivery_metrics(net, group=2).delivery_ratio == 0.0

    def test_since_filter_excludes_warmup(self):
        net = ledger_network(
            [
                (1, 0.0, [1], {}),
                (1, 50.0, [1], {1: 50.1}),
            ]
        )
        assert compute_delivery_metrics(net, since=10.0).delivery_ratio == 1.0

    def test_empty_ledger(self):
        net = ledger_network([])
        metrics = compute_delivery_metrics(net)
        assert metrics.delivery_ratio == 0.0
        assert metrics.mean_delay == 0.0

    def test_percentiles_ordered(self):
        net = ledger_network(
            [(1, 0.0, list(range(1, 11)), {i: 0.01 * i for i in range(1, 11)})]
        )
        metrics = compute_delivery_metrics(net)
        assert metrics.median_delay <= metrics.p95_delay <= metrics.max_delay

    def test_as_row(self):
        net = ledger_network([(1, 0.0, [1], {1: 0.2})])
        row = compute_delivery_metrics(net).as_row()
        assert row["pdr"] == 1.0
        assert row["mean_delay_ms"] == pytest.approx(200.0)


class TestFairness:
    def test_jain_perfectly_even(self):
        assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_jain_single_hotspot(self):
        assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_jain_bounds(self):
        values = [1, 7, 3, 9, 2]
        j = jain_index(values)
        assert 1.0 / len(values) <= j <= 1.0

    def test_cov(self):
        assert coefficient_of_variation([4, 4, 4]) == 0.0
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([1, 9]) > 0.5

    def test_peak_to_mean(self):
        assert peak_to_mean([2, 2, 2]) == pytest.approx(1.0)
        assert peak_to_mean([9, 1, 2]) == pytest.approx(9 / 4)
        assert peak_to_mean([]) == 1.0

    def test_forwarding_loads_and_restriction(self):
        net = make_static_network({0: Point(10, 10), 1: Point(100, 10), 2: Point(190, 10)})
        packet = data_packet("p", 0, 1, None, 10, 0.0)
        net.node(0).broadcast(packet)
        net.node(1).broadcast(packet.copy_for_forwarding())
        loads = forwarding_loads(net)
        assert loads[0] == 1 and loads[1] == 1 and loads[2] == 0
        restricted = forwarding_loads(net, restrict_to=[1, 2])
        assert set(restricted) == {1, 2}

    def test_compute_load_balance(self):
        net = make_static_network({0: Point(10, 10), 1: Point(100, 10)})
        net.node(0).broadcast(data_packet("p", 0, 1, None, 10, 0.0))
        metrics = compute_load_balance(net)
        assert metrics.node_count == 2
        assert metrics.total_load == 1
        assert metrics.max_load == 1
        assert 0.0 < metrics.jain <= 1.0


class TestOverhead:
    def test_counters_and_normalisation(self):
        net = ledger_network([(1, 0.0, [1, 2], {1: 0.1, 2: 0.2})])
        net.node(0).broadcast(control_packet("p", "beacon", 0, 50, 0.0))
        net.node(0).broadcast(data_packet("p", 0, 1, None, 100, 0.0))
        metrics = compute_overhead_metrics(net, duration=10.0)
        assert metrics.control_packets == 1
        assert metrics.data_packets == 1
        assert metrics.achieved_deliveries == 2
        assert metrics.control_per_delivered == pytest.approx(0.5)
        assert metrics.transmissions_per_delivered == pytest.approx(1.0)
        assert metrics.control_bytes_per_node_per_second == pytest.approx(50 / 2 / 10.0)

    def test_no_deliveries_gives_infinite_normalised_overhead(self):
        net = ledger_network([(1, 0.0, [1], {})])
        net.node(0).broadcast(control_packet("p", "beacon", 0, 50, 0.0))
        metrics = compute_overhead_metrics(net, duration=10.0)
        assert metrics.control_per_delivered == float("inf")

    def test_invalid_duration(self):
        net = ledger_network([])
        with pytest.raises(ValueError):
            compute_overhead_metrics(net, duration=0.0)


class TestAvailability:
    def test_windowed_delivery_ratio(self):
        net = ledger_network(
            [
                (1, 1.0, [1, 2], {1: 1.1, 2: 1.2}),   # window [0, 5): 100%
                (1, 6.0, [1, 2], {1: 6.1}),            # window [5, 10): 50%
            ]
        )
        net.simulator.run(15.0)
        series = windowed_delivery_ratio(net, window=5.0)
        assert series[0] == (0.0, 1.0)
        assert series[1] == (5.0, 0.5)
        assert series[2] == (10.0, 1.0)   # no traffic -> vacuous 1.0

    def test_windowed_invalid_window(self):
        net = ledger_network([])
        with pytest.raises(ValueError):
            windowed_delivery_ratio(net, window=0.0)

    def test_compute_availability(self):
        net = ledger_network(
            [
                (1, 1.0, [1, 2], {1: 1.1, 2: 1.2}),    # before failure: 100%
                (1, 11.0, [1, 2], {1: 11.3}),           # during failure: 50%
                (1, 21.0, [1, 2], {1: 21.1, 2: 21.2}),  # after recovery: 100%
            ]
        )
        net.simulator.run(30.0)
        metrics = compute_availability(net, failure_time=10.0, failure_duration=10.0, window=5.0)
        assert metrics.pre_failure_ratio == pytest.approx(1.0)
        assert metrics.during_failure_ratio == pytest.approx(0.5)
        assert metrics.post_failure_ratio == pytest.approx(1.0)
        assert metrics.availability == pytest.approx(0.5)
        assert metrics.recovery_time <= 20.0

    def test_as_row_handles_never_recovered(self):
        net = ledger_network(
            [
                (1, 1.0, [1], {1: 1.1}),
                (1, 11.0, [1], {}),
            ]
        )
        net.simulator.run(20.0)
        metrics = compute_availability(net, failure_time=10.0, failure_duration=10.0, window=5.0)
        assert metrics.as_row()["recovery_s"] == "never"


class TestCollectors:
    def test_collect_metrics_report(self):
        net = ledger_network([(1, 0.0, [1], {1: 0.5})])
        report = collect_metrics(net, protocol="test", duration=10.0, backbone_nodes=[0])
        assert report.protocol == "test"
        assert report.node_count == 2
        assert report.backbone_load_balance is not None
        row = report.as_row()
        assert row["protocol"] == "test"
        assert "pdr" in row and "jain" in row

    def test_format_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yyy", "c": 3}]
        table = format_table(rows, title="T")
        assert "T" in table
        assert "a" in table and "c" in table
        assert "22" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
