"""Unit tests for hypercube-tier multicast trees."""

import pytest

from repro.hypercube.labels import hamming_distance
from repro.hypercube.multicast_tree import (
    MulticastTree,
    binomial_multicast_tree,
    greedy_multicast_tree,
)
from repro.hypercube.topology import IncompleteHypercube


class TestBinomialTree:
    def test_covers_all_members(self):
        members = [1, 3, 7, 12, 15]
        tree = binomial_multicast_tree(4, 0, members)
        assert tree.covers(members)
        assert tree.is_valid_tree()

    def test_edges_are_hypercube_links(self):
        tree = binomial_multicast_tree(4, 0, range(16))
        for parent, child in tree.edges():
            assert hamming_distance(parent, child) == 1

    def test_broadcast_tree_spans_whole_cube(self):
        tree = binomial_multicast_tree(4, 5, range(16))
        assert tree.nodes() == set(range(16))
        assert tree.total_edges() == 15

    def test_depth_bounded_by_dimension(self):
        tree = binomial_multicast_tree(5, 0, range(32))
        assert tree.depth() <= 5

    def test_fanout_bounded_by_dimension(self):
        tree = binomial_multicast_tree(4, 0, range(16))
        assert max(tree.forwarding_load().values()) <= 4

    def test_empty_member_set(self):
        tree = binomial_multicast_tree(3, 2, [])
        assert tree.nodes() == {2}
        assert tree.total_edges() == 0

    def test_root_only_member(self):
        tree = binomial_multicast_tree(3, 2, [2])
        assert tree.nodes() == {2}

    def test_invalid_member(self):
        with pytest.raises(ValueError):
            binomial_multicast_tree(3, 0, [9])

    def test_invalid_root(self):
        with pytest.raises(ValueError):
            binomial_multicast_tree(3, 8, [1])

    def test_single_parent_invariant(self):
        tree = binomial_multicast_tree(5, 7, [0, 1, 2, 3, 30, 31, 17, 21])
        parents = {}
        for parent, child in tree.edges():
            assert child not in parents
            parents[child] = parent


class TestGreedyTree:
    def test_covers_members_on_complete_cube(self):
        cube = IncompleteHypercube(4)
        members = [3, 5, 12, 15]
        tree = greedy_multicast_tree(cube, 0, members)
        assert tree.covers(members)
        assert tree.members == set(members)
        assert tree.is_valid_tree()

    def test_edges_exist_in_cube(self):
        cube = IncompleteHypercube(4)
        cube.remove_node(1)
        cube.remove_node(2)
        tree = greedy_multicast_tree(cube, 0, [7, 15])
        for parent, child in tree.edges():
            assert cube.has_edge(parent, child)

    def test_unreachable_members_skipped(self):
        cube = IncompleteHypercube(3)
        for nb in (1, 2, 4):
            cube.remove_node(nb)  # isolate node 0
        tree = greedy_multicast_tree(cube, 0, [7])
        assert 7 not in tree.members
        assert tree.nodes() == {0}

    def test_absent_members_skipped(self):
        cube = IncompleteHypercube(3, present_nodes=[0, 1, 3])
        tree = greedy_multicast_tree(cube, 0, [3, 6])
        assert tree.members == {3}

    def test_root_absent_gives_empty_tree(self):
        cube = IncompleteHypercube(3, present_nodes=[1, 3])
        tree = greedy_multicast_tree(cube, 0, [3])
        assert tree.members == set()

    def test_root_member_included(self):
        cube = IncompleteHypercube(3)
        tree = greedy_multicast_tree(cube, 4, [4, 6])
        assert 4 in tree.members


class TestTreeStructure:
    def test_serialize_roundtrip(self):
        tree = binomial_multicast_tree(4, 0, [1, 6, 9, 15])
        data = tree.serialize()
        restored = MulticastTree.deserialize(data)
        assert restored.root == tree.root
        assert restored.members == tree.members
        assert {k: sorted(v) for k, v in restored.children.items()} == {
            k: sorted(v) for k, v in tree.children.items()
        }

    def test_parent_of_and_children_of(self):
        tree = MulticastTree(root=0, children={0: [1, 2], 2: [6]}, members={1, 6})
        assert tree.parent_of(6) == 2
        assert tree.parent_of(0) is None
        assert tree.children_of(0) == [1, 2]
        assert tree.children_of(5) == []

    def test_invalid_tree_detected_multiple_parents(self):
        tree = MulticastTree(root=0, children={0: [1], 2: [1]}, members={1})
        assert not tree.is_valid_tree()

    def test_invalid_tree_detected_root_with_parent(self):
        tree = MulticastTree(root=0, children={1: [0]}, members=set())
        assert not tree.is_valid_tree()

    def test_forwarding_load_counts_children(self):
        tree = MulticastTree(root=0, children={0: [1, 2, 4], 4: [5]}, members={1, 2, 5})
        load = tree.forwarding_load()
        assert load[0] == 3
        assert load[4] == 1
        assert load[1] == 0
