"""Unit tests for packets, radio models and the MAC abstraction."""

import pytest

from repro.geo.geometry import Point
from repro.simulation.mac import IdealMac, SimpleCsmaMac
from repro.simulation.packet import Packet, PacketKind, control_packet, data_packet
from repro.simulation.radio import LogDistanceRadio, UnitDiskRadio


class TestPacket:
    def test_unique_uids(self):
        a = data_packet("p", 1, 1, None, 100, 0.0)
        b = data_packet("p", 1, 1, None, 100, 0.0)
        assert a.uid != b.uid

    def test_copy_preserves_uid_and_isolates_headers(self):
        packet = data_packet("p", 1, 1, "x", 100, 0.0, headers={"stage": "a"})
        copy = packet.copy_for_forwarding()
        assert copy.uid == packet.uid
        copy.headers["stage"] = "b"
        assert packet.headers["stage"] == "a"

    def test_age(self):
        packet = data_packet("p", 1, 1, None, 100, now=5.0)
        assert packet.age(8.5) == pytest.approx(3.5)

    def test_control_packet_kind(self):
        packet = control_packet("p", "beacon", 3, 40, 1.0)
        assert packet.kind is PacketKind.CONTROL
        assert packet.msg_type == "beacon"

    def test_data_packet_kind(self):
        packet = data_packet("p", 3, 9, ("payload",), 256, 1.0)
        assert packet.kind is PacketKind.DATA
        assert packet.group == 9
        assert packet.size_bytes == 256


class TestUnitDiskRadio:
    def test_in_range_boundary(self):
        radio = UnitDiskRadio(100.0)
        assert radio.in_range(Point(0, 0), Point(100.0, 0.0))
        assert not radio.in_range(Point(0, 0), Point(100.1, 0.0))

    def test_reception_probability_binary(self):
        radio = UnitDiskRadio(100.0)
        assert radio.reception_probability(Point(0, 0), Point(50, 0)) == 1.0
        assert radio.reception_probability(Point(0, 0), Point(150, 0)) == 0.0

    def test_nominal_range(self):
        assert UnitDiskRadio(250.0).nominal_range == 250.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0.0)


class TestLogDistanceRadio:
    def test_reliable_zone(self):
        radio = LogDistanceRadio(100.0, reliable_fraction=0.8, max_fraction=1.2)
        assert radio.reception_probability(Point(0, 0), Point(70, 0)) == 1.0

    def test_grey_zone_monotone_decreasing(self):
        radio = LogDistanceRadio(100.0)
        p1 = radio.reception_probability(Point(0, 0), Point(90, 0))
        p2 = radio.reception_probability(Point(0, 0), Point(110, 0))
        assert 0.0 <= p2 <= p1 <= 1.0

    def test_beyond_cutoff(self):
        radio = LogDistanceRadio(100.0, max_fraction=1.2)
        assert radio.reception_probability(Point(0, 0), Point(125, 0)) == 0.0
        assert not radio.in_range(Point(0, 0), Point(125, 0))

    def test_nominal_range_includes_grey_zone(self):
        radio = LogDistanceRadio(100.0, max_fraction=1.2)
        assert radio.nominal_range == pytest.approx(120.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogDistanceRadio(-1.0)
        with pytest.raises(ValueError):
            LogDistanceRadio(100.0, exponent=0.0)
        with pytest.raises(ValueError):
            LogDistanceRadio(100.0, reliable_fraction=1.5)
        with pytest.raises(ValueError):
            LogDistanceRadio(100.0, max_fraction=0.5)


class TestSimpleCsmaMac:
    def test_delay_grows_with_size(self):
        mac = SimpleCsmaMac()
        assert mac.transmission_delay(2000, 0) > mac.transmission_delay(100, 0)

    def test_delay_grows_with_contention(self):
        mac = SimpleCsmaMac()
        assert mac.transmission_delay(1000, 20) > mac.transmission_delay(1000, 0)

    def test_base_latency_floor(self):
        mac = SimpleCsmaMac(base_latency=0.005)
        assert mac.transmission_delay(0, 0) == pytest.approx(0.005)

    def test_loss_probability_capped(self):
        mac = SimpleCsmaMac(
            collision_probability_per_contender=0.1, max_collision_probability=0.3
        )
        assert mac.loss_probability(100) == pytest.approx(0.3)
        assert mac.loss_probability(1) == pytest.approx(0.1)
        assert mac.loss_probability(0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimpleCsmaMac(bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            SimpleCsmaMac(base_latency=-0.1)
        with pytest.raises(ValueError):
            SimpleCsmaMac(collision_probability_per_contender=2.0)

    def test_negative_arguments_rejected(self):
        mac = SimpleCsmaMac()
        with pytest.raises(ValueError):
            mac.transmission_delay(-1, 0)
        with pytest.raises(ValueError):
            mac.transmission_delay(10, -1)
        with pytest.raises(ValueError):
            mac.loss_probability(-1)


class TestIdealMac:
    def test_constant_delay_no_loss(self):
        mac = IdealMac(delay=0.002)
        assert mac.transmission_delay(10_000, 50) == 0.002
        assert mac.loss_probability(50) == 0.0


class TestMacLossProbabilityContract:
    """Every registered MAC honours the [0, 1] loss-probability contract."""

    ADVERSARIAL_CONTENDERS = (0, 1, 7, 10**6, 10**9)

    def test_every_registered_mac_in_unit_interval(self):
        from repro.registry import MACS

        for name in MACS.names():
            mac = MACS.get(name)(None)
            for contenders in self.ADVERSARIAL_CONTENDERS:
                p = mac.loss_probability(contenders)
                assert 0.0 <= p <= 1.0, (name, contenders, p)

    def test_simple_csma_clamped_for_adversarial_configs(self):
        # per-contender probability 1.0 with a 10**9 multiplier would hit
        # 1e9 without the clamp; the configured cap already bounds it, and
        # the explicit clamp keeps the contract even if the cap moves
        mac = SimpleCsmaMac(
            collision_probability_per_contender=1.0, max_collision_probability=1.0
        )
        assert mac.loss_probability(10**9) == 1.0
        assert mac.loss_probability(0) == 0.0


class TestSinrRadio:
    def _radio(self, **overrides):
        from repro.simulation.phy import SinrRadio, SinrRadioConfig

        return SinrRadio(SinrRadioConfig(**overrides), range_hint=250.0)

    def test_calibration_matches_unit_disk_range(self):
        radio = self._radio()
        assert radio.nominal_range == pytest.approx(250.0)
        assert radio.rssi_at(250.0) == pytest.approx(radio.config.sensitivity_dbm)
        assert radio.in_range(Point(0, 0), Point(250.0, 0))
        assert not radio.in_range(Point(0, 0), Point(251.0, 0))

    def test_rssi_monotone_decreasing(self):
        radio = self._radio()
        samples = [radio.rssi_at(d) for d in (1.0, 10.0, 50.0, 100.0, 250.0)]
        assert samples == sorted(samples, reverse=True)

    def test_explicit_reference_loss_derives_range(self):
        # margin = 16 - 40 - (-90) = 66 dB; range = d0 * 10^(66/30)
        radio = self._radio(reference_loss_db=40.0)
        assert radio.nominal_range == pytest.approx(10.0 ** (66.0 / 30.0))

    def test_unclosable_link_budget_rejected(self):
        with pytest.raises(ValueError):
            self._radio(reference_loss_db=200.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            self._radio(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            self._radio(reference_distance=0.0)
        with pytest.raises(ValueError):
            self._radio(interference_range_factor=0.5)
        with pytest.raises(ValueError):
            self._radio(noise_floor_dbm=20.0)

    def test_reception_without_interference(self):
        radio = self._radio()
        a, near, far = Point(0, 0), Point(100, 0), Point(400, 0)
        assert radio.reception_probability(a, near) == 1.0
        assert radio.reception_probability(a, far) == 0.0

    def test_strong_interferer_jams_weak_frame(self):
        radio = self._radio()
        sender, receiver = Point(0, 0), Point(240.0, 0)
        # no interference: the calibrated edge-of-range frame decodes
        assert (
            radio.reception_probability_during(0, sender, 2, receiver, 0.0, 0.01)
            == 1.0
        )
        # a concurrent sender right next to the receiver buries it
        radio.note_transmission(1, Point(250.0, 0), 0.0, 0.01)
        assert (
            radio.reception_probability_during(0, sender, 2, receiver, 0.0, 0.01)
            == 0.0
        )

    def test_capture_survives_distant_interferer(self):
        radio = self._radio()
        sender, receiver = Point(0, 0), Point(10.0, 0)
        radio.note_transmission(1, Point(400.0, 0), 0.0, 0.01)
        # the wanted frame is 24 dB/decade stronger; SINR clears capture
        assert (
            radio.reception_probability_during(0, sender, 2, receiver, 0.0, 0.01)
            == 1.0
        )

    def test_half_duplex_receiver(self):
        radio = self._radio()
        radio.note_transmission(2, Point(50.0, 0), 0.0, 0.01)
        # node 2 is itself on the air, so it cannot decode anything
        assert (
            radio.reception_probability_during(
                0, Point(0, 0), 2, Point(50.0, 0), 0.005, 0.015
            )
            == 0.0
        )

    def test_non_overlapping_frames_do_not_interfere(self):
        radio = self._radio()
        sender, receiver = Point(0, 0), Point(240.0, 0)
        radio.note_transmission(1, Point(250.0, 0), 1.0, 1.01)
        assert (
            radio.reception_probability_during(0, sender, 2, receiver, 2.0, 2.01)
            == 1.0
        )


class TestInterferenceMap:
    def _map(self):
        from repro.simulation.phy import InterferenceMap

        return InterferenceMap(cell_size=450.0)

    def _record(self, sender, x, start, end):
        from repro.simulation.phy import TransmissionRecord

        return TransmissionRecord(sender, Point(x, 0.0), start, end)

    def test_expired_records_pruned(self):
        imap = self._map()
        imap.note(self._record(1, 0.0, 0.0, 0.5), now=0.0)
        imap.note(self._record(2, 0.0, 0.4, 0.9), now=0.4)
        assert len(imap) == 2  # record 1 still on the air at 0.4
        imap.note(self._record(3, 0.0, 2.0, 2.5), now=2.0)
        assert len(imap) == 1  # records 1 and 2 expired before 2.0

    def test_spatial_and_temporal_filtering(self):
        imap = self._map()
        imap.note(self._record(1, 100.0, 0.0, 1.0), now=0.0)
        imap.note(self._record(2, 5000.0, 0.0, 1.0), now=0.0)  # far away
        imap.note(self._record(3, 100.0, 5.0, 6.0), now=0.0)  # later interval
        hits = imap.concurrent(Point(0, 0), 0.2, 0.8, radius=450.0)
        assert [r.sender for r in hits] == [1]

    def test_exclude_sender(self):
        imap = self._map()
        imap.note(self._record(1, 100.0, 0.0, 1.0), now=0.0)
        assert imap.concurrent(Point(0, 0), 0.0, 1.0, 450.0, exclude_sender=1) == []

    def test_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            self._map().note(self._record(1, 0.0, 1.0, 1.0), now=0.0)

    def test_rejects_nonpositive_cell(self):
        from repro.simulation.phy import InterferenceMap

        with pytest.raises(ValueError):
            InterferenceMap(cell_size=0.0)


class TestCsmaCaMac:
    def _mac(self, **overrides):
        from repro.simulation.phy import CsmaCaMac, CsmaCaMacConfig

        return CsmaCaMac(CsmaCaMacConfig(**overrides))

    def test_airtime_formula(self):
        mac = self._mac(bitrate_bps=1_000_000.0, phy_overhead_s=0.0001)
        assert mac.airtime(1000) == pytest.approx(0.0001 + 8000 / 1e6)

    def test_contention_window_doubles_then_caps(self):
        mac = self._mac(cw_min=16, max_backoff_stage=3)
        assert mac.contention_window(0) == 16
        assert mac.contention_window(1) == 16
        assert mac.contention_window(2) == 32
        assert mac.contention_window(4) == 64
        assert mac.contention_window(8) == 128
        assert mac.contention_window(10**6) == 128  # capped at stage 3

    def test_plan_draws_backoff_from_rng(self):
        import random as random_module

        mac = self._mac()
        a = mac.plan_transmission(0, 0.0, 512, 4, random_module.Random(1))
        b = mac.plan_transmission(0, 0.0, 512, 4, random_module.Random(1))
        assert a == b  # same seed, same plan
        assert a.proceed and a.airtime > 0

    def test_duty_cycle_denial_and_ledger(self):
        mac = self._mac(duty_cycle=0.01, duty_cycle_window=1.0, bitrate_bps=1e6)
        import random as random_module

        rng = random_module.Random(3)
        # one 1000-byte frame is ~8 ms of air: within the 10 ms budget
        first = mac.plan_transmission(7, 0.0, 1000, 0, rng)
        assert first.proceed
        second = mac.plan_transmission(7, 0.001, 1000, 0, rng)
        assert not second.proceed
        assert second.loss_probability == 1.0
        assert mac.duty_cycle_denials == 1
        assert mac.window_usage(7, 0.001) == pytest.approx(first.airtime)
        # the window slides: a second later the budget is free again
        third = mac.plan_transmission(7, 1.5, 1000, 0, rng)
        assert third.proceed

    def test_duty_cycle_isolated_per_sender(self):
        mac = self._mac(duty_cycle=0.01, duty_cycle_window=1.0, bitrate_bps=1e6)
        import random as random_module

        rng = random_module.Random(3)
        assert mac.plan_transmission(1, 0.0, 1000, 0, rng).proceed
        assert mac.plan_transmission(2, 0.0, 1000, 0, rng).proceed

    def test_invalid_parameters(self):
        for bad in (
            dict(bitrate_bps=0.0),
            dict(base_latency=-1.0),
            dict(slot_time=-1.0),
            dict(cw_min=0),
            dict(max_backoff_stage=-1),
            dict(duty_cycle=0.0),
            dict(duty_cycle=1.5),
            dict(duty_cycle_window=0.0),
        ):
            with pytest.raises(ValueError):
                self._mac(**bad)


class TestNetworkDutyCycleAccounting:
    def test_denied_frames_surface_in_network_stats(self):
        from repro.geo.area import Area
        from repro.mobility.static import StaticMobility
        from repro.simulation.network import Network, NetworkConfig
        from repro.simulation.node import MobileNode
        from repro.simulation.phy import CsmaCaMac, CsmaCaMacConfig
        from repro.simulation.radio import UnitDiskRadio

        area = Area(500.0, 500.0)
        positions = {0: Point(100.0, 100.0), 1: Point(200.0, 100.0)}
        mobility = StaticMobility(area, [0, 1], positions=positions, seed=1)
        mac = CsmaCaMac(
            CsmaCaMacConfig(duty_cycle=0.01, duty_cycle_window=1.0, bitrate_bps=1e6)
        )
        network = Network(
            NetworkConfig(area=area, radio=UnitDiskRadio(250.0), mac=mac, seed=1),
            mobility,
        )
        for node_id in (0, 1):
            network.add_node(MobileNode(node_id))
        network.start()
        for _ in range(3):
            network.transmit(0, data_packet("p", 0, 1, None, 1000, 0.0))
        assert network.stats.drops_duty_cycle == 2
        assert network.stats.airtime_seconds == pytest.approx(mac.airtime(1000))
