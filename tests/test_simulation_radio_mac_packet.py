"""Unit tests for packets, radio models and the MAC abstraction."""

import pytest

from repro.geo.geometry import Point
from repro.simulation.mac import IdealMac, SimpleCsmaMac
from repro.simulation.packet import Packet, PacketKind, control_packet, data_packet
from repro.simulation.radio import LogDistanceRadio, UnitDiskRadio


class TestPacket:
    def test_unique_uids(self):
        a = data_packet("p", 1, 1, None, 100, 0.0)
        b = data_packet("p", 1, 1, None, 100, 0.0)
        assert a.uid != b.uid

    def test_copy_preserves_uid_and_isolates_headers(self):
        packet = data_packet("p", 1, 1, "x", 100, 0.0, headers={"stage": "a"})
        copy = packet.copy_for_forwarding()
        assert copy.uid == packet.uid
        copy.headers["stage"] = "b"
        assert packet.headers["stage"] == "a"

    def test_age(self):
        packet = data_packet("p", 1, 1, None, 100, now=5.0)
        assert packet.age(8.5) == pytest.approx(3.5)

    def test_control_packet_kind(self):
        packet = control_packet("p", "beacon", 3, 40, 1.0)
        assert packet.kind is PacketKind.CONTROL
        assert packet.msg_type == "beacon"

    def test_data_packet_kind(self):
        packet = data_packet("p", 3, 9, ("payload",), 256, 1.0)
        assert packet.kind is PacketKind.DATA
        assert packet.group == 9
        assert packet.size_bytes == 256


class TestUnitDiskRadio:
    def test_in_range_boundary(self):
        radio = UnitDiskRadio(100.0)
        assert radio.in_range(Point(0, 0), Point(100.0, 0.0))
        assert not radio.in_range(Point(0, 0), Point(100.1, 0.0))

    def test_reception_probability_binary(self):
        radio = UnitDiskRadio(100.0)
        assert radio.reception_probability(Point(0, 0), Point(50, 0)) == 1.0
        assert radio.reception_probability(Point(0, 0), Point(150, 0)) == 0.0

    def test_nominal_range(self):
        assert UnitDiskRadio(250.0).nominal_range == 250.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UnitDiskRadio(0.0)


class TestLogDistanceRadio:
    def test_reliable_zone(self):
        radio = LogDistanceRadio(100.0, reliable_fraction=0.8, max_fraction=1.2)
        assert radio.reception_probability(Point(0, 0), Point(70, 0)) == 1.0

    def test_grey_zone_monotone_decreasing(self):
        radio = LogDistanceRadio(100.0)
        p1 = radio.reception_probability(Point(0, 0), Point(90, 0))
        p2 = radio.reception_probability(Point(0, 0), Point(110, 0))
        assert 0.0 <= p2 <= p1 <= 1.0

    def test_beyond_cutoff(self):
        radio = LogDistanceRadio(100.0, max_fraction=1.2)
        assert radio.reception_probability(Point(0, 0), Point(125, 0)) == 0.0
        assert not radio.in_range(Point(0, 0), Point(125, 0))

    def test_nominal_range_includes_grey_zone(self):
        radio = LogDistanceRadio(100.0, max_fraction=1.2)
        assert radio.nominal_range == pytest.approx(120.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogDistanceRadio(-1.0)
        with pytest.raises(ValueError):
            LogDistanceRadio(100.0, exponent=0.0)
        with pytest.raises(ValueError):
            LogDistanceRadio(100.0, reliable_fraction=1.5)
        with pytest.raises(ValueError):
            LogDistanceRadio(100.0, max_fraction=0.5)


class TestSimpleCsmaMac:
    def test_delay_grows_with_size(self):
        mac = SimpleCsmaMac()
        assert mac.transmission_delay(2000, 0) > mac.transmission_delay(100, 0)

    def test_delay_grows_with_contention(self):
        mac = SimpleCsmaMac()
        assert mac.transmission_delay(1000, 20) > mac.transmission_delay(1000, 0)

    def test_base_latency_floor(self):
        mac = SimpleCsmaMac(base_latency=0.005)
        assert mac.transmission_delay(0, 0) == pytest.approx(0.005)

    def test_loss_probability_capped(self):
        mac = SimpleCsmaMac(
            collision_probability_per_contender=0.1, max_collision_probability=0.3
        )
        assert mac.loss_probability(100) == pytest.approx(0.3)
        assert mac.loss_probability(1) == pytest.approx(0.1)
        assert mac.loss_probability(0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SimpleCsmaMac(bandwidth_bps=0.0)
        with pytest.raises(ValueError):
            SimpleCsmaMac(base_latency=-0.1)
        with pytest.raises(ValueError):
            SimpleCsmaMac(collision_probability_per_contender=2.0)

    def test_negative_arguments_rejected(self):
        mac = SimpleCsmaMac()
        with pytest.raises(ValueError):
            mac.transmission_delay(-1, 0)
        with pytest.raises(ValueError):
            mac.transmission_delay(10, -1)
        with pytest.raises(ValueError):
            mac.loss_probability(-1)


class TestIdealMac:
    def test_constant_delay_no_loss(self):
        mac = IdealMac(delay=0.002)
        assert mac.transmission_delay(10_000, 50) == 0.002
        assert mac.loss_probability(50) == 0.0
