"""Unit tests for complete and incomplete hypercube topologies."""

import pytest

from repro.hypercube.topology import Hypercube, IncompleteHypercube


class TestCompleteHypercube:
    def test_size_and_diameter(self):
        cube = Hypercube(4)
        assert cube.size == 16
        assert len(cube) == 16
        assert cube.diameter == 4

    def test_membership(self):
        cube = Hypercube(3)
        assert 0 in cube and 7 in cube
        assert 8 not in cube

    def test_neighbors_and_degree(self):
        cube = Hypercube(4)
        assert cube.degree(0) == 4
        assert sorted(cube.neighbors(0)) == [1, 2, 4, 8]

    def test_neighbors_invalid_label(self):
        with pytest.raises(KeyError):
            Hypercube(3).neighbors(9)

    def test_edge_count(self):
        # n * 2^(n-1) edges
        cube = Hypercube(4)
        assert sum(1 for _ in cube.edges()) == 4 * 8

    def test_has_edge(self):
        cube = Hypercube(3)
        assert cube.has_edge(0, 1)
        assert not cube.has_edge(0, 3)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            Hypercube(-1)


class TestIncompleteHypercube:
    def test_complete_by_default(self):
        cube = IncompleteHypercube(3)
        assert len(cube) == 8
        assert cube.is_connected()
        assert cube.edge_count() == 12

    def test_subset_of_nodes(self):
        cube = IncompleteHypercube(3, present_nodes=[0, 1, 3, 7])
        assert len(cube) == 4
        assert cube.missing_nodes() == [2, 4, 5, 6]
        assert cube.has_edge(0, 1)
        assert cube.has_edge(1, 3)
        assert cube.has_edge(3, 7)
        assert not cube.has_edge(0, 7)

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            IncompleteHypercube(3, present_nodes=[9])

    def test_add_remove_node(self):
        cube = IncompleteHypercube(3, present_nodes=[0])
        cube.add_node(1)
        assert cube.has_edge(0, 1)
        cube.remove_node(1)
        assert 1 not in cube

    def test_remove_edge(self):
        cube = IncompleteHypercube(2)
        cube.remove_edge(0, 1)
        assert not cube.has_edge(0, 1)
        assert cube.has_edge(0, 2)
        cube.restore_edge(0, 1)
        assert cube.has_edge(0, 1)

    def test_remove_non_adjacent_edge_raises(self):
        cube = IncompleteHypercube(3)
        with pytest.raises(ValueError):
            cube.remove_edge(0, 3)

    def test_neighbors_of_missing_node_raises(self):
        cube = IncompleteHypercube(3, present_nodes=[0, 1])
        with pytest.raises(KeyError):
            cube.neighbors(5)

    def test_connectivity_detection(self):
        # two isolated corners of a 3-cube
        cube = IncompleteHypercube(3, present_nodes=[0, 7])
        assert not cube.is_connected()
        assert len(cube.connected_components()) == 2

    def test_reachability(self):
        cube = IncompleteHypercube(3)
        cube.remove_node(1)
        cube.remove_node(2)
        cube.remove_node(4)
        # node 0 is now isolated from the rest
        assert cube.reachable_from(0) == {0}
        assert 7 in cube.reachable_from(3)

    def test_diameter_of_complete_matches_dimension(self):
        for n in range(1, 5):
            assert IncompleteHypercube(n).diameter() == n

    def test_diameter_grows_when_nodes_removed(self):
        cube = IncompleteHypercube(3)
        base = cube.diameter()
        # removing 2 and 4 forces 0 <-> 6 traffic through longer detours
        cube.remove_node(2)
        assert cube.diameter() >= base

    def test_bfs_distances(self):
        cube = IncompleteHypercube(3)
        dist = cube.bfs_distances(0)
        assert dist[0] == 0
        assert dist[7] == 3
        assert dist[3] == 2

    def test_copy_independent(self):
        cube = IncompleteHypercube(3)
        clone = cube.copy()
        clone.remove_node(0)
        assert 0 in cube
        assert 0 not in clone

    def test_empty_cube(self):
        cube = IncompleteHypercube(3, present_nodes=[])
        assert cube.is_connected()          # vacuously
        assert cube.diameter() == 0
        assert list(cube.edges()) == []

    def test_node_set_frozen(self):
        cube = IncompleteHypercube(2, present_nodes=[0, 1])
        assert cube.node_set() == frozenset({0, 1})
