"""Unit tests for the mesh tier."""

import pytest

from repro.hypercube.mesh import (
    MeshGrid,
    MeshMulticastTree,
    MeshNode,
    mesh_multicast_tree,
)


class TestMeshGrid:
    def test_complete_mesh(self):
        mesh = MeshGrid(3, 2)
        assert len(mesh) == 6
        assert (0, 0) in mesh and (2, 1) in mesh
        assert (3, 0) not in mesh

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshGrid(0, 2)

    def test_partial_mesh(self):
        mesh = MeshGrid(2, 2, present=[(0, 0), (1, 1)])
        assert len(mesh) == 2
        assert not mesh.has_link((0, 0), (1, 1))   # not adjacent

    def test_out_of_range_present_node(self):
        with pytest.raises(ValueError):
            MeshGrid(2, 2, present=[(2, 0)])

    def test_neighbors_four_connectivity(self):
        mesh = MeshGrid(3, 3)
        assert sorted(mesh.neighbors((1, 1))) == [(0, 1), (1, 0), (1, 2), (2, 1)]
        assert sorted(mesh.neighbors((0, 0))) == [(0, 1), (1, 0)]

    def test_neighbors_of_absent_node_raises(self):
        mesh = MeshGrid(2, 2, present=[(0, 0)])
        with pytest.raises(KeyError):
            mesh.neighbors((1, 1))

    def test_remove_and_restore_link(self):
        mesh = MeshGrid(2, 2)
        mesh.remove_link((0, 0), (0, 1))
        assert not mesh.has_link((0, 0), (0, 1))
        assert (0, 1) not in mesh.neighbors((0, 0))
        mesh.restore_link((0, 0), (0, 1))
        assert mesh.has_link((0, 0), (0, 1))

    def test_remove_non_adjacent_link_raises(self):
        with pytest.raises(ValueError):
            MeshGrid(3, 3).remove_link((0, 0), (2, 2))

    def test_add_remove_node(self):
        mesh = MeshGrid(2, 2, present=[(0, 0)])
        mesh.add_node((0, 1))
        assert mesh.has_link((0, 0), (0, 1))
        mesh.remove_node((0, 1))
        assert (0, 1) not in mesh

    def test_connectivity(self):
        mesh = MeshGrid(3, 1)
        assert mesh.is_connected()
        mesh.remove_node((1, 0))
        assert not mesh.is_connected()

    def test_shortest_path(self):
        mesh = MeshGrid(4, 4)
        path = mesh.shortest_path((0, 0), (3, 3))
        assert path[0] == (0, 0) and path[-1] == (3, 3)
        assert len(path) - 1 == 6

    def test_shortest_path_detours_around_hole(self):
        mesh = MeshGrid(3, 3)
        mesh.remove_node((1, 1))
        path = mesh.shortest_path((0, 1), (2, 1))
        assert (1, 1) not in path
        assert len(path) - 1 == 4

    def test_shortest_path_unreachable(self):
        mesh = MeshGrid(3, 1)
        mesh.remove_node((1, 0))
        with pytest.raises(ValueError):
            mesh.shortest_path((0, 0), (2, 0))

    def test_manhattan(self):
        assert MeshGrid(5, 5).manhattan((0, 0), (3, 4)) == 7

    def test_mesh_node_dataclass(self):
        node = MeshNode(coord=(2, 3), hypercube_id=11)
        assert node.column == 2
        assert node.row == 3


class TestMeshMulticastTree:
    def test_covers_members(self):
        mesh = MeshGrid(4, 4)
        members = [(0, 3), (3, 0), (3, 3)]
        tree = mesh_multicast_tree(mesh, (0, 0), members)
        assert tree.covers(members)
        assert tree.members == set(members)

    def test_edges_are_mesh_links(self):
        mesh = MeshGrid(4, 4)
        tree = mesh_multicast_tree(mesh, (1, 1), [(3, 3), (0, 0)])
        for parent, child in tree.edges():
            assert mesh.has_link(parent, child)

    def test_unreachable_member_skipped(self):
        mesh = MeshGrid(3, 1)
        mesh.remove_node((1, 0))
        tree = mesh_multicast_tree(mesh, (0, 0), [(2, 0)])
        assert (2, 0) not in tree.members

    def test_absent_root(self):
        mesh = MeshGrid(2, 2, present=[(1, 1)])
        tree = mesh_multicast_tree(mesh, (0, 0), [(1, 1)])
        assert tree.members == set()

    def test_depth_and_children(self):
        mesh = MeshGrid(3, 1)
        tree = mesh_multicast_tree(mesh, (0, 0), [(2, 0)])
        assert tree.depth() == 2
        assert tree.children_of((0, 0)) == [(1, 0)]

    def test_serialize_roundtrip(self):
        mesh = MeshGrid(3, 3)
        tree = mesh_multicast_tree(mesh, (0, 0), [(2, 2), (0, 2)])
        restored = MeshMulticastTree.deserialize(tree.serialize())
        assert restored.root == tree.root
        assert restored.members == tree.members
        assert {k: sorted(v) for k, v in restored.children.items()} == {
            k: sorted(v) for k, v in tree.children.items()
        }
