"""Unit tests for nodes and the network (transmission, neighbours, ledger)."""

import pytest

from repro.geo.area import Area
from repro.geo.geometry import Point
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.static import StaticMobility
from repro.simulation.agent import ProtocolAgent
from repro.simulation.mac import IdealMac
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import MobileNode
from repro.simulation.packet import Packet, PacketKind, data_packet
from repro.simulation.radio import UnitDiskRadio

from tests.conftest import make_static_network


class RecordingAgent(ProtocolAgent):
    """Test agent that records every packet it receives."""

    protocol_name = "recorder"

    def __init__(self):
        super().__init__()
        self.received = []
        self.started = False

    def on_start(self):
        self.started = True

    def on_packet(self, packet, from_node):
        self.received.append((packet, from_node))


def line_network(spacing=100.0, count=5, radio_range=150.0):
    """Nodes on a line, each within range of its neighbours only."""
    positions = {i: Point(i * spacing + 10.0, 500.0) for i in range(count)}
    return make_static_network(positions, radio_range=radio_range)


class TestTopology:
    def test_neighbors_on_line(self):
        net = line_network()
        assert sorted(net.neighbors_of(2)) == [1, 3]
        assert sorted(net.neighbors_of(0)) == [1]

    def test_are_neighbors_symmetric(self):
        net = line_network()
        assert net.are_neighbors(1, 2)
        assert net.are_neighbors(2, 1)
        assert not net.are_neighbors(0, 4)

    def test_failed_node_excluded_from_neighbors(self):
        net = line_network()
        net.fail_nodes([1])
        assert net.neighbors_of(0) == []
        net.recover_nodes([1])
        assert net.neighbors_of(0) == [1]

    def test_connectivity_components(self):
        net = make_static_network(
            {0: Point(0, 0), 1: Point(100, 0), 2: Point(800, 800), 3: Point(900, 800)},
            radio_range=150.0,
        )
        comps = net.connectivity_components()
        assert len(comps) == 2
        assert {0, 1} in comps and {2, 3} in comps

    def test_duplicate_node_rejected(self):
        net = line_network()
        with pytest.raises(ValueError):
            net.add_node(MobileNode(0))

    def test_node_without_mobility_state_rejected(self):
        area = Area(1000, 1000)
        mobility = StaticMobility(area, [0, 1], seed=1)
        net = Network(NetworkConfig(area=area), mobility)
        with pytest.raises(ValueError):
            net.add_node(MobileNode(7))


class TestTransmission:
    def test_broadcast_reaches_neighbors_only(self):
        net = line_network()
        agents = {}
        for node in net.nodes.values():
            agent = RecordingAgent()
            node.attach_agent(agent)
            agents[node.node_id] = agent
        packet = data_packet("recorder", source=2, group=1, payload="x", size_bytes=100, now=0.0)
        net.node(2).broadcast(packet)
        net.simulator.run(1.0)
        assert len(agents[1].received) == 1
        assert len(agents[3].received) == 1
        assert agents[0].received == []
        assert agents[4].received == []
        assert agents[2].received == []  # sender does not hear itself

    def test_unicast_to_out_of_range_node_dropped(self):
        net = line_network()
        agent = RecordingAgent()
        net.node(4).attach_agent(agent)
        packet = data_packet("recorder", source=0, group=1, payload="x", size_bytes=100, now=0.0)
        net.node(0).unicast(4, packet)
        net.simulator.run(1.0)
        assert agent.received == []
        assert net.stats.drops_out_of_range == 1

    def test_unicast_delivery_and_hop_count(self):
        net = line_network()
        agent = RecordingAgent()
        net.node(1).attach_agent(agent)
        packet = data_packet("recorder", source=0, group=1, payload="x", size_bytes=100, now=0.0)
        net.node(0).unicast(1, packet)
        net.simulator.run(1.0)
        assert len(agent.received) == 1
        received, from_node = agent.received[0]
        assert from_node == 0
        assert received.hops == 1

    def test_dead_sender_does_not_transmit(self):
        net = line_network()
        agent = RecordingAgent()
        net.node(1).attach_agent(agent)
        net.node(0).fail()
        packet = data_packet("recorder", source=0, group=1, payload="x", size_bytes=100, now=0.0)
        net.node(0).broadcast(packet)
        net.simulator.run(1.0)
        assert agent.received == []

    def test_dead_receiver_does_not_receive(self):
        net = line_network()
        agent = RecordingAgent()
        net.node(1).attach_agent(agent)
        net.node(1).fail()
        packet = data_packet("recorder", source=0, group=1, payload="x", size_bytes=100, now=0.0)
        net.node(0).broadcast(packet)
        net.simulator.run(1.0)
        assert agent.received == []

    def test_transmission_counters(self):
        net = line_network()
        packet = data_packet("p", source=0, group=1, payload=None, size_bytes=200, now=0.0)
        net.node(0).broadcast(packet)
        assert net.stats.transmissions == 1
        assert net.stats.data_transmissions == 1
        assert net.stats.data_bytes == 200

    def test_ttl_guard(self):
        net = line_network()
        packet = data_packet("p", source=0, group=1, payload=None, size_bytes=10, now=0.0)
        packet.hops = net.config.max_packet_hops
        net.node(0).broadcast(packet)
        assert net.stats.drops_ttl == 1
        assert net.stats.transmissions == 0


class TestAgentsAndGroups:
    def test_on_start_called(self):
        net = line_network()
        agent = RecordingAgent()
        net.node(0).attach_agent(agent)
        net.start()
        assert agent.started

    def test_start_twice_raises(self):
        net = line_network()
        net.start()
        with pytest.raises(RuntimeError):
            net.start()

    def test_group_membership_callbacks(self):
        net = line_network()

        class MembershipAgent(RecordingAgent):
            def __init__(self):
                super().__init__()
                self.joined = []
                self.left = []

            def on_group_join(self, group):
                self.joined.append(group)

            def on_group_leave(self, group):
                self.left.append(group)

        agent = MembershipAgent()
        net.node(0).attach_agent(agent)
        net.node(0).join_group(5)
        net.node(0).join_group(5)      # duplicate join is a no-op
        net.node(0).leave_group(5)
        net.node(0).leave_group(5)     # duplicate leave is a no-op
        assert agent.joined == [5]
        assert agent.left == [5]

    def test_group_members_query(self):
        net = line_network()
        net.node(0).join_group(9)
        net.node(2).join_group(9)
        net.node(3).fail()
        net.node(3).join_group(9)
        # failed nodes are not counted as reachable members
        assert sorted(net.group_members(9)) == [0, 2]

    def test_agent_lookup(self):
        net = line_network()
        agent = RecordingAgent()
        net.node(0).attach_agent(agent)
        assert net.node(0).agent("recorder") is agent
        assert net.node(0).has_agent("recorder")
        with pytest.raises(KeyError):
            net.node(0).agent("missing")

    def test_attach_agent_requires_network(self):
        node = MobileNode(99)
        with pytest.raises(RuntimeError):
            node.attach_agent(RecordingAgent())


class TestDeliveryLedger:
    def test_register_and_note_delivery(self):
        net = line_network()
        packet = data_packet("p", source=0, group=1, payload=None, size_bytes=10, now=0.0)
        net.register_data_packet(packet, intended=[1, 2, 0])
        record = net.deliveries[packet.uid]
        assert record.intended == {1, 2}            # source excluded
        net.note_delivery(packet, 1)
        net.note_delivery(packet, 1)                 # duplicate delivery counted once
        net.note_delivery(packet, 4)                 # not intended -> ignored
        assert record.delivery_ratio == pytest.approx(0.5)
        assert len(record.delays()) == 1

    def test_unknown_packet_delivery_ignored(self):
        net = line_network()
        packet = data_packet("p", source=0, group=1, payload=None, size_bytes=10, now=0.0)
        net.note_delivery(packet, 1)     # must not raise
        assert packet.uid not in net.deliveries


class TestMobilityIntegration:
    def test_positions_update_and_neighbors_invalidate(self):
        area = Area(1000.0, 1000.0)
        mobility = RandomWaypointMobility(area, [0, 1], min_speed=20.0, max_speed=20.0, seed=2)
        net = Network(
            NetworkConfig(area=area, radio=UnitDiskRadio(100.0), mac=IdealMac(), mobility_step=1.0),
            mobility,
        )
        net.add_node(MobileNode(0))
        net.add_node(MobileNode(1))
        before = net.position_of(0)
        net.start()
        net.simulator.run(10.0)
        after = net.position_of(0)
        assert before != after
        # the location service follows the mobility updates
        assert net.node(0).location_service.last_known().position == after
