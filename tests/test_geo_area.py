"""Unit tests for repro.geo.area."""

import random

import pytest

from repro.geo.area import Area, BoundaryPolicy
from repro.geo.geometry import Point, Vector


class TestAreaBasics:
    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Area(0.0, 100.0)
        with pytest.raises(ValueError):
            Area(100.0, -5.0)

    def test_center_and_diagonal(self):
        area = Area(300.0, 400.0)
        assert area.center == Point(150.0, 200.0)
        assert area.diagonal == pytest.approx(500.0)

    def test_contains(self):
        area = Area(100.0, 100.0)
        assert area.contains(Point(0.0, 0.0))
        assert area.contains(Point(100.0, 100.0))
        assert not area.contains(Point(100.1, 50.0))
        assert not area.contains(Point(-0.1, 50.0))

    def test_random_point_inside(self):
        area = Area(50.0, 80.0)
        rng = random.Random(42)
        for _ in range(100):
            assert area.contains(area.random_point(rng))


class TestBoundaryPolicies:
    def setup_method(self):
        self.area = Area(100.0, 100.0)

    def test_point_inside_unchanged(self):
        p, v = self.area.apply_boundary(Point(50.0, 50.0), Vector(1.0, 1.0), BoundaryPolicy.REFLECT)
        assert p == Point(50.0, 50.0)
        assert v == Vector(1.0, 1.0)

    def test_clamp(self):
        p, v = self.area.apply_boundary(Point(120.0, -10.0), Vector(1.0, -1.0), BoundaryPolicy.CLAMP)
        assert p == Point(100.0, 0.0)
        assert v == Vector(1.0, -1.0)

    def test_wrap(self):
        p, _ = self.area.apply_boundary(Point(120.0, -10.0), Vector(0.0, 0.0), BoundaryPolicy.WRAP)
        assert p.x == pytest.approx(20.0)
        assert p.y == pytest.approx(90.0)

    def test_reflect_simple_overshoot(self):
        p, v = self.area.apply_boundary(Point(110.0, 50.0), Vector(2.0, 0.0), BoundaryPolicy.REFLECT)
        assert p.x == pytest.approx(90.0)
        assert v.dx == pytest.approx(-2.0)
        assert v.dy == pytest.approx(0.0)

    def test_reflect_negative_overshoot(self):
        p, v = self.area.apply_boundary(Point(-30.0, 50.0), Vector(-1.0, 3.0), BoundaryPolicy.REFLECT)
        assert p.x == pytest.approx(30.0)
        assert v.dx == pytest.approx(1.0)
        assert v.dy == pytest.approx(3.0)

    def test_reflect_large_overshoot_stays_inside(self):
        p, _ = self.area.apply_boundary(Point(350.0, -260.0), Vector(5.0, -5.0), BoundaryPolicy.REFLECT)
        assert self.area.contains(p)

    def test_reflect_both_axes(self):
        p, v = self.area.apply_boundary(Point(105.0, 108.0), Vector(1.0, 2.0), BoundaryPolicy.REFLECT)
        assert p == Point(95.0, 92.0)
        assert v == Vector(-1.0, -2.0)
