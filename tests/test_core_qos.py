"""Unit tests for QoS requirements and QoS-aware route selection."""

import pytest

from repro.core.qos import (
    QoSRequirement,
    QoSViolation,
    RouteQoS,
    admission_control,
    qos_satisfaction_ratio,
    route_satisfies,
    select_qos_route,
)
from repro.core.route_maintenance import LinkQoS, LogicalRoute


def route(path, delay, bandwidth=1e6):
    return LogicalRoute(path=tuple(path), qos=LinkQoS(delay=delay, bandwidth=bandwidth, measured_at=0.0))


class TestQoSRequirement:
    def test_defaults_accept_everything(self):
        req = QoSRequirement()
        assert req.is_met_by(delay=100.0, bandwidth=0.0)

    def test_delay_bound(self):
        req = QoSRequirement(max_delay=0.1)
        assert req.is_met_by(0.05, 0.0)
        assert not req.is_met_by(0.2, 0.0)

    def test_bandwidth_bound(self):
        req = QoSRequirement(min_bandwidth=1e6)
        assert req.is_met_by(1.0, 2e6)
        assert not req.is_met_by(1.0, 0.5e6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QoSRequirement(max_delay=0.0)
        with pytest.raises(ValueError):
            QoSRequirement(min_bandwidth=-1.0)

    def test_route_qos_satisfies(self):
        assert RouteQoS(delay=0.05, bandwidth=2e6).satisfies(
            QoSRequirement(max_delay=0.1, min_bandwidth=1e6)
        )
        assert not RouteQoS(delay=0.05, bandwidth=0.5e6).satisfies(
            QoSRequirement(max_delay=0.1, min_bandwidth=1e6)
        )


class TestRouteSelection:
    def test_route_satisfies(self):
        req = QoSRequirement(max_delay=0.1, min_bandwidth=1e6)
        assert route_satisfies(route([0, 1], 0.05, 2e6), req)
        assert not route_satisfies(route([0, 1], 0.5, 2e6), req)

    def test_select_prefers_fewest_hops_then_delay(self):
        req = QoSRequirement(max_delay=1.0)
        routes = [
            route([0, 1, 3], 0.01),
            route([0, 3], 0.05),
            route([0, 2, 3], 0.02),
        ]
        chosen = select_qos_route(routes, req)
        assert chosen.path == (0, 3)

    def test_select_skips_unqualified(self):
        req = QoSRequirement(max_delay=0.03)
        routes = [route([0, 3], 0.05), route([0, 1, 3], 0.02)]
        chosen = select_qos_route(routes, req)
        assert chosen.path == (0, 1, 3)

    def test_select_excludes_failed_nodes(self):
        req = QoSRequirement(max_delay=1.0)
        routes = [route([0, 1, 3], 0.01), route([0, 2, 3], 0.02)]
        chosen = select_qos_route(routes, req, exclude_hnids={1})
        assert chosen.path == (0, 2, 3)

    def test_select_none_when_nothing_qualifies(self):
        req = QoSRequirement(max_delay=0.001)
        assert select_qos_route([route([0, 1], 0.5)], req) is None

    def test_select_empty_routes(self):
        assert select_qos_route([], QoSRequirement()) is None


class TestAdmission:
    def test_admission_returns_route(self):
        req = QoSRequirement(max_delay=0.1)
        admitted = admission_control([route([0, 1], 0.05)], req)
        assert admitted.path == (0, 1)

    def test_admission_raises_when_unsatisfiable(self):
        req = QoSRequirement(max_delay=0.01, min_bandwidth=1e9)
        with pytest.raises(QoSViolation):
            admission_control([route([0, 1], 0.05)], req)


class TestSatisfactionRatio:
    def test_ratio(self):
        req = QoSRequirement(max_delay=0.1)
        assert qos_satisfaction_ratio([0.05, 0.2, 0.08, 0.11], req) == pytest.approx(0.5)

    def test_empty_delays(self):
        assert qos_satisfaction_ratio([], QoSRequirement(max_delay=0.1)) == 0.0

    def test_all_satisfied(self):
        assert qos_satisfaction_ratio([0.01, 0.02], QoSRequirement(max_delay=0.1)) == 1.0
