"""Tests of adaptive seed replication (the ``AdaptiveCI`` policy).

Covers the guarantees the adaptive orchestrator loop rests on: policy
validation, the deterministic per-point seed schedule, per-point stopping
(zero-variance points stop at ``min_seeds``, noisy ones grow until the
target or ``max_seeds``), round provenance, that stopping decisions are a
pure function of the cache (a re-run executes nothing; sharded runs merge
byte-identically to unsharded), and the CLI surface
(``--adaptive``/``--target-ci`` plus the convergence report).
"""

import dataclasses
import json
import os

import pytest

from repro.experiments.orchestrator import (
    AdaptiveCI,
    SpecError,
    SweepSpec,
    adaptive_seed_sequence,
    expand_points,
    export_csv,
    load_adaptive_results,
    merge_caches,
    register_collector,
    run_sweep_adaptive,
    shard_points,
)
from repro.experiments.scenarios import ScenarioConfig


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny-adaptive",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=12,
            area_size=500.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=4,
            traffic_start=3.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [10, 14]},
        seeds=(1, 2),
        duration=10.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


@register_collector("const_metric")
def _const_metric(result):
    """Zero-variance metric: every seed reports the same value."""
    return {"const_metric": 0.5}


@register_collector("seed_metric")
def _seed_metric(result):
    """Guaranteed-variance metric: every seed reports a distinct value."""
    return {"seed_metric": float(result.config.seed)}


class TestPolicyValidation:
    def test_target_must_be_positive(self):
        with pytest.raises(SpecError, match="target_half_width"):
            AdaptiveCI(target_half_width=0.0)
        with pytest.raises(SpecError, match="target_half_width"):
            AdaptiveCI(target_half_width=-0.1)

    def test_min_seeds_below_two_rejected(self):
        # one replication has no CI half-width, so it could never converge
        # honestly -- the policy refuses instead of silently passing n=1
        with pytest.raises(SpecError, match="min_seeds"):
            AdaptiveCI(target_half_width=0.1, min_seeds=1)

    def test_max_below_min_rejected(self):
        with pytest.raises(SpecError, match="max_seeds"):
            AdaptiveCI(target_half_width=0.1, min_seeds=5, max_seeds=4)

    def test_batch_must_be_positive(self):
        with pytest.raises(SpecError, match="batch"):
            AdaptiveCI(target_half_width=0.1, batch=0)

    def test_metric_required(self):
        with pytest.raises(SpecError, match="metric"):
            AdaptiveCI(target_half_width=0.1, metric="")

    def test_growth_below_one_rejected(self):
        with pytest.raises(SpecError, match="growth"):
            AdaptiveCI(target_half_width=0.1, growth=0.99)


class TestSeedSequence:
    def test_spec_seeds_first_then_successors(self):
        policy = AdaptiveCI(target_half_width=0.1, min_seeds=2, max_seeds=5)
        spec = tiny_spec(seeds=(3, 5))
        assert adaptive_seed_sequence(spec, policy) == [3, 5, 6, 7, 8]

    def test_successors_skip_existing_seeds(self):
        policy = AdaptiveCI(target_half_width=0.1, min_seeds=2, max_seeds=4)
        # 5 > 4, so the extension from max(seeds)+1 = 6 never collides; a
        # spec like (2, 4) must not emit 4 twice either
        spec = tiny_spec(seeds=(4, 2))
        assert adaptive_seed_sequence(spec, policy) == [4, 2, 5, 6]

    def test_duplicate_spec_seeds_collapse(self):
        # a repeated seed would count one run twice as two "independent"
        # replications (identical values -> half-width 0 -> instant,
        # bogus convergence); the sequence must dedupe the spec list
        policy = AdaptiveCI(target_half_width=0.1, min_seeds=2, max_seeds=4)
        spec = tiny_spec(seeds=(5, 5, 7))
        assert adaptive_seed_sequence(spec, policy) == [5, 7, 8, 9]

    def test_truncated_to_max_seeds(self):
        policy = AdaptiveCI(target_half_width=0.1, min_seeds=2, max_seeds=3)
        spec = tiny_spec(seeds=(9, 8, 7, 6, 5))
        assert adaptive_seed_sequence(spec, policy) == [9, 8, 7]

    def test_deterministic(self):
        policy = AdaptiveCI(target_half_width=0.1, min_seeds=2, max_seeds=12)
        assert adaptive_seed_sequence(tiny_spec(), policy) == adaptive_seed_sequence(
            tiny_spec(), policy
        )


class TestAdaptiveStopping:
    def test_zero_variance_point_stops_at_min_seeds(self):
        spec = tiny_spec(
            collector="const_metric",
            replication=AdaptiveCI(
                target_half_width=0.001, metric="const_metric",
                min_seeds=2, max_seeds=6, batch=2,
            ),
        )
        report = run_sweep_adaptive(spec, workers=1)
        assert [p.status for p in report.points] == ["converged", "converged"]
        assert [p.n_seeds for p in report.points] == [2, 2]
        assert all(p.half_width == 0.0 for p in report.points)
        assert all(p.rounds == 1 for p in report.points)

    def test_noisy_point_grows_to_max_and_reports_unconverged(self):
        spec = tiny_spec(
            grid={"n_nodes": [10]},
            collector="seed_metric",
            replication=AdaptiveCI(
                target_half_width=1e-6, metric="seed_metric",
                min_seeds=2, max_seeds=4, batch=1,
            ),
        )
        report = run_sweep_adaptive(spec, workers=1)
        (point,) = report.points
        assert point.status == "unconverged"
        assert point.n_seeds == 4
        assert point.rounds == 3            # 2 seeds, then +1, then +1
        assert point.half_width > 1e-6

    def test_adaptive_cheaper_than_fixed_grid(self):
        spec = tiny_spec(
            collector="const_metric",
            replication=AdaptiveCI(
                target_half_width=0.01, metric="const_metric",
                min_seeds=2, max_seeds=8, batch=2,
            ),
        )
        report = run_sweep_adaptive(spec, workers=1)
        assert report.executed < report.fixed_equivalent_runs
        assert report.executed == len(report.results) == 4

    def test_round_provenance_stamped_on_results(self):
        spec = tiny_spec(
            grid={"n_nodes": [10]},
            collector="seed_metric",
            replication=AdaptiveCI(
                target_half_width=1e-6, metric="seed_metric",
                min_seeds=2, max_seeds=4, batch=1,
            ),
        )
        report = run_sweep_adaptive(spec, workers=1)
        assert [r.adaptive_round for r in report.results] == [0, 0, 1, 2]
        assert [r.seed for r in report.results] == [1, 2, 3, 4]

    def test_unknown_metric_raises_with_alternatives(self):
        spec = tiny_spec(
            replication=AdaptiveCI(target_half_width=0.1, metric="no_such_metric")
        )
        with pytest.raises(SpecError, match="no_such_metric.*numeric metrics"):
            run_sweep_adaptive(spec, workers=1)

    def test_seed_axis_incompatible(self):
        spec = tiny_spec(
            grid={"seed": [3, 4]},
            replication=AdaptiveCI(target_half_width=0.1),
        )
        with pytest.raises(SpecError, match="seed"):
            run_sweep_adaptive(spec, workers=1)

    def test_missing_policy_raises(self):
        with pytest.raises(SpecError, match="no adaptive replication policy"):
            run_sweep_adaptive(tiny_spec(), workers=1)


class TestAdaptiveCacheDeterminism:
    POLICY = AdaptiveCI(
        target_half_width=0.2, metric="pdr", min_seeds=2, max_seeds=5, batch=1
    )

    def test_rerun_against_warm_cache_executes_nothing(self, tmp_path):
        spec = tiny_spec(replication=self.POLICY)
        cache_dir = str(tmp_path / "cache")
        first = run_sweep_adaptive(spec, workers=2, cache_dir=cache_dir)
        assert first.cached == 0
        second = run_sweep_adaptive(spec, workers=2, cache_dir=cache_dir)
        assert second.executed == 0
        assert second.cached == len(first.results)
        assert [r.run_id for r in second.results] == [r.run_id for r in first.results]
        assert [r.metrics for r in second.results] == [r.metrics for r in first.results]
        assert [p.to_dict() for p in second.points] == [
            p.to_dict() for p in first.points
        ]

    def test_replay_reconstructs_run_set_without_executing(self, tmp_path):
        spec = tiny_spec(replication=self.POLICY)
        cache_dir = str(tmp_path / "cache")
        live = run_sweep_adaptive(spec, workers=1, cache_dir=cache_dir)
        replay, missing = load_adaptive_results(spec, cache_dir)
        assert missing == []
        assert replay.executed == 0
        assert [r.run_id for r in replay.results] == [r.run_id for r in live.results]
        assert [r.adaptive_round for r in replay.results] == [
            r.adaptive_round for r in live.results
        ]

    def test_replay_of_cold_cache_reports_incomplete_points(self, tmp_path):
        spec = tiny_spec(replication=self.POLICY)
        replay, missing = load_adaptive_results(spec, str(tmp_path / "empty"))
        assert len(missing) == 2 * self.POLICY.min_seeds
        assert all(p.status == "incomplete" for p in replay.points)
        assert replay.results == []

    def test_sharded_adaptive_merges_byte_identical(self, tmp_path):
        spec = tiny_spec(replication=self.POLICY)
        reference = run_sweep_adaptive(spec, workers=1)

        shard_dirs = []
        for index in (1, 2):
            shard_dir = str(tmp_path / f"shard{index}")
            shard_dirs.append(shard_dir)
            partial = run_sweep_adaptive(
                spec, workers=1, cache_dir=shard_dir, shard=(index, 2)
            )
            assert partial.cached == 0
        merged_dir = str(tmp_path / "merged")
        merge_caches(shard_dirs, merged_dir)

        merged, missing = load_adaptive_results(spec, merged_dir)
        assert missing == []
        assert [r.run_id for r in merged.results] == [
            r.run_id for r in reference.results
        ]
        ref_csv = str(tmp_path / "ref.csv")
        merged_csv = str(tmp_path / "merged.csv")
        export_csv(reference.results, ref_csv)
        export_csv(merged.results, merged_csv)
        with open(ref_csv, "rb") as fh:
            ref_bytes = fh.read()
        with open(merged_csv, "rb") as fh:
            assert fh.read() == ref_bytes

    def test_shard_points_partitions_every_point_once(self):
        points = expand_points(tiny_spec(grid={"n_nodes": [10, 12, 14]}))
        shards = [shard_points(points, i, 2) for i in (1, 2)]
        labels = [p.label for shard in shards for p in shard]
        assert sorted(labels) == sorted(p.label for p in points)


class TestCliAdaptive:
    @pytest.fixture()
    def tiny_adaptive(self, monkeypatch):
        from repro.experiments import specs

        monkeypatch.setitem(
            specs.SPECS,
            "smoke_adaptive",
            dataclasses.replace(
                specs.get_spec("smoke_adaptive"),
                grid={"n_nodes": [10, 12]},
                seeds=(1, 2),
                duration=8.0,
                replication=AdaptiveCI(
                    target_half_width=0.5, metric="pdr",
                    min_seeds=2, max_seeds=3, batch=1,
                ),
            ),
        )
        return specs.get_spec("smoke_adaptive")

    def test_run_prints_convergence_report_and_embeds_artifact_block(
        self, tmp_path, capsys, tiny_adaptive
    ):
        from repro.experiments.__main__ import main

        out = str(tmp_path / "artifacts")
        code = main(
            ["run", "smoke_adaptive", "--cache-dir", str(tmp_path / "cache"),
             "--out", out, "--workers", "1"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "adaptive replication on 'pdr'" in stdout
        assert "point(s) converged" in stdout
        with open(os.path.join(out, "smoke_adaptive.json")) as fh:
            document = json.load(fh)
        assert document["adaptive"]["policy"]["target_half_width"] == 0.5
        assert {p["status"] for p in document["adaptive"]["points"]} <= {
            "converged", "unconverged"
        }

    def test_merge_replays_adaptive_cache(self, tmp_path, capsys, tiny_adaptive):
        from repro.experiments.__main__ import main

        cache = str(tmp_path / "cache")
        assert main(
            ["run", "smoke_adaptive", "--cache-dir", cache,
             "--out", str(tmp_path / "a"), "--format", "none", "--workers", "1"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["merge", "smoke_adaptive", "--cache-dir", cache,
             "--out", str(tmp_path / "m")]
        ) == 0
        assert "adaptive replication" in capsys.readouterr().out

    def test_merge_incomplete_adaptive_cache_fails(self, tmp_path, capsys, tiny_adaptive):
        from repro.experiments.__main__ import main

        cold = tmp_path / "cold"
        cold.mkdir()
        code = main(
            ["merge", "smoke_adaptive", "--cache-dir", str(cold),
             "--out", str(tmp_path / "m")]
        )
        assert code == 1
        assert "missing" in capsys.readouterr().err

    def test_adaptive_flag_without_target_is_an_error(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "smoke", "--adaptive", "--format", "none"]) == 2
        assert "--target-ci" in capsys.readouterr().err

    def test_ci_metric_without_adaptive_is_an_error(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "smoke", "--ci-metric", "pdr", "--format", "none"]) == 2
        assert "--ci-metric" in capsys.readouterr().err

    def test_target_ci_forces_adaptive_on_fixed_spec(self, tmp_path, capsys, monkeypatch):
        from repro.experiments import specs
        from repro.experiments.__main__ import main

        monkeypatch.setitem(
            specs.SPECS,
            "smoke",
            dataclasses.replace(
                specs.get_spec("smoke"), grid={"n_nodes": [10]}, seeds=(1, 2), duration=8.0
            ),
        )
        code = main(
            ["run", "smoke", "--target-ci", "0.9",
             "--cache-dir", str(tmp_path / "cache"),
             "--out", str(tmp_path / "out"), "--workers", "1"]
        )
        assert code == 0
        assert "adaptive replication on 'pdr'" in capsys.readouterr().out


class TestVarianceAwareBatching:
    """growth > 1 doubles down on points still far (>2x) from the target."""

    def test_growth_below_one_rejected(self):
        with pytest.raises(SpecError, match="growth"):
            AdaptiveCI(target_half_width=0.1, growth=0.5)

    def test_next_batch_grows_geometrically_while_far(self):
        policy = AdaptiveCI(target_half_width=0.1, batch=1, growth=2.0)
        far = 10 * policy.target_half_width
        assert policy.next_batch(1, far) == 2
        assert policy.next_batch(2, far) == 4
        assert policy.next_batch(4, far) == 8

    def test_next_batch_resets_once_near_target(self):
        policy = AdaptiveCI(target_half_width=0.1, batch=2, growth=2.0)
        near = 1.5 * policy.target_half_width
        assert policy.next_batch(8, near) == policy.batch

    def test_fixed_policy_never_grows(self):
        policy = AdaptiveCI(target_half_width=0.1, batch=3)  # growth=1
        assert policy.next_batch(3, 10 * policy.target_half_width) == 3

    def test_fractional_growth_still_makes_progress(self):
        policy = AdaptiveCI(target_half_width=0.1, batch=1, growth=1.01)
        assert policy.next_batch(1, 10 * policy.target_half_width) == 2

    def test_growth_cuts_rounds_on_very_noisy_points(self, tmp_path):
        # seed_metric never converges at a 1e-6 target, so both policies
        # exhaust max_seeds=8 -- fixed batch=1 in 7 rounds, growth=2.0 in
        # 3 (the batch doubles after every far-from-target test, initial
        # block included: blocks of 2, 2, 4).  The cache is shared: the policy is
        # not part of the cache key, so the grown sweep replays the fixed
        # sweep's runs and executes nothing new.
        cache_dir = str(tmp_path / "cache")
        base = dict(grid={"n_nodes": [10]}, collector="seed_metric")
        fixed = tiny_spec(
            **base,
            replication=AdaptiveCI(
                target_half_width=1e-6, metric="seed_metric",
                min_seeds=2, max_seeds=8, batch=1,
            ),
        )
        grown = tiny_spec(
            **base,
            replication=AdaptiveCI(
                target_half_width=1e-6, metric="seed_metric",
                min_seeds=2, max_seeds=8, batch=1, growth=2.0,
            ),
        )
        fixed_report = run_sweep_adaptive(fixed, workers=1, cache_dir=cache_dir)
        grown_report = run_sweep_adaptive(grown, workers=1, cache_dir=cache_dir)
        (fixed_point,) = fixed_report.points
        (grown_point,) = grown_report.points
        assert fixed_point.rounds == 7
        assert grown_point.rounds == 3
        assert fixed_point.n_seeds == grown_point.n_seeds == 8
        assert fixed_point.status == grown_point.status == "unconverged"
        assert grown_report.executed == 0          # same runs, same cache keys
        assert grown_report.cached == 8
        assert [r.seed for r in grown_report.results] == [
            r.seed for r in fixed_report.results
        ]

    def test_growth_round_provenance_follows_scheduling_rounds(self, tmp_path):
        spec = tiny_spec(
            grid={"n_nodes": [10]},
            collector="seed_metric",
            replication=AdaptiveCI(
                target_half_width=1e-6, metric="seed_metric",
                min_seeds=2, max_seeds=8, batch=1, growth=2.0,
            ),
        )
        report = run_sweep_adaptive(spec, workers=1)
        # rounds schedule seed blocks of 2, 2 (batch doubled once), then
        # 4 (doubled again, capped by max_seeds)
        assert [r.adaptive_round for r in report.results] == [0, 0, 1, 1, 2, 2, 2, 2]

    def test_growth_replay_is_deterministic(self, tmp_path):
        spec = tiny_spec(
            grid={"n_nodes": [10]},
            collector="seed_metric",
            replication=AdaptiveCI(
                target_half_width=1e-6, metric="seed_metric",
                min_seeds=2, max_seeds=8, batch=1, growth=2.0,
            ),
        )
        cache_dir = str(tmp_path / "cache")
        live = run_sweep_adaptive(spec, workers=1, cache_dir=cache_dir)
        again = run_sweep_adaptive(spec, workers=1, cache_dir=cache_dir)
        assert again.executed == 0
        replay, missing = load_adaptive_results(spec, cache_dir)
        assert missing == []
        for other in (again, replay):
            assert [r.run_id for r in other.results] == [
                r.run_id for r in live.results
            ]
            assert [r.adaptive_round for r in other.results] == [
                r.adaptive_round for r in live.results
            ]
            assert [p.to_dict() for p in other.points] == [
                p.to_dict() for p in live.points
            ]
