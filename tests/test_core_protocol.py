"""Integration-level tests of the HVDB protocol agent and stack.

These exercise the three algorithms of Figures 4-6 end-to-end on small,
deterministic (static) networks built directly on the simulator.
"""

import pytest

from repro.core.membership import BroadcasterCriterion
from repro.core.protocol import HVDB_PROTOCOL, HVDBParameters, HVDBProtocolAgent, HVDBStack
from repro.core.qos import QoSRequirement
from repro.geo.area import Area
from repro.geo.geometry import Point
from repro.mobility.static import StaticMobility
from repro.simulation.mac import IdealMac
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import MobileNode
from repro.simulation.packet import Packet
from repro.simulation.radio import UnitDiskRadio


def build_hvdb_network(
    positions, vc=(8, 8), dimension=4, radio_range=300.0, params=None, non_ch_nodes=()
):
    """Static HVDB network with explicitly placed nodes on a 1000x1000 area.

    With the default ``vc=(8, 8)`` and ``dimension=4`` the logical structure
    is the paper's running example: four 4-dimensional hypercubes in a 2x2
    mesh.
    """
    area = Area(1000.0, 1000.0)
    node_ids = sorted(positions)
    mobility = StaticMobility(area, node_ids, positions=positions, seed=1)
    network = Network(
        NetworkConfig(area=area, radio=UnitDiskRadio(radio_range), mac=IdealMac(), seed=1),
        mobility,
    )
    for node_id in node_ids:
        network.add_node(MobileNode(node_id, ch_capable=node_id not in set(non_ch_nodes)))
    stack = HVDBStack(
        vc_cols=vc[0],
        vc_rows=vc[1],
        dimension=dimension,
        params=params or HVDBParameters(),
        clustering_interval=2.0,
        seed=1,
    )
    stack.install(network)
    return network, stack


def dense_grid_positions(n_per_side=4, spacing=250.0, offset=125.0):
    """One node at the centre of each VC of an n x n grid."""
    positions = {}
    node_id = 0
    for col in range(n_per_side):
        for row in range(n_per_side):
            positions[node_id] = Point(offset + col * spacing, offset + row * spacing)
            node_id += 1
    return positions


class TestStackConstruction:
    def test_agents_installed_on_every_node(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        for node in network.nodes.values():
            assert node.has_agent(HVDB_PROTOCOL)
            assert node.has_agent("geo-unicast")
        assert len(stack.agents) == len(network.nodes)

    def test_every_occupied_vc_has_a_cluster_head(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        assert len(stack.model.cluster_heads()) == 16

    def test_model_rebuilt_on_cluster_update(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        stack.start()
        network.simulator.run(6.0)
        assert stack.model_rebuilds >= 2

    def test_qos_requirement_registration(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        stack.set_qos_requirement(1, QoSRequirement(max_delay=0.2))
        assert 1 in stack.qos_requirements


class TestMembershipPropagation:
    def test_local_membership_reaches_cluster_head(self):
        positions = dense_grid_positions()
        positions[100] = Point(150.0, 150.0)   # extra member node, same VC as node 0
        network, stack = build_hvdb_network(positions, non_ch_nodes={100})
        network.node(100).join_group(7)
        stack.start()
        network.simulator.run(10.0)
        ch = stack.clustering.head_of_node(100)
        assert ch is not None and ch != 100
        ch_agent = stack.agents[ch]
        assert 100 in ch_agent.member_reports
        report, _ = ch_agent.member_reports[100]
        assert 7 in report.groups

    def test_mnt_summary_spreads_within_hypercube(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        member = 0
        network.node(member).join_group(3)
        stack.start()
        network.simulator.run(20.0)
        member_address = stack.model.address_of_ch(stack.clustering.head_of_node(member))
        # some other CH in the same hypercube knows the member's HNID hosts group 3
        peers = [
            agent
            for ch, agent in stack.agents.items()
            if stack.model.is_cluster_head(ch)
            and stack.model.address_of_ch(ch).hid == member_address.hid
            and ch != stack.clustering.head_of_node(member)
        ]
        assert peers
        knowing = [
            agent for agent in peers if agent._local_ht_summary(member_address.hid).has_group(3)
        ]
        assert knowing

    def test_mt_summary_spreads_across_hypercubes(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        network.node(15).join_group(9)         # node 15 sits in the far corner block
        stack.start()
        network.simulator.run(40.0)
        member_ch = stack.clustering.head_of_node(15)
        member_mesh = stack.model.address_of_ch(member_ch).mnid
        # a CH in a *different* hypercube learned which mesh node has members
        far_chs = [
            agent
            for ch, agent in stack.agents.items()
            if stack.model.is_cluster_head(ch)
            and stack.model.address_of_ch(ch).mnid != member_mesh
        ]
        assert far_chs
        aware = [a for a in far_chs if member_mesh in a.mt_summary.mesh_nodes_for(9)]
        assert aware, "HT-Summary broadcast should have reached remote cluster heads"


class TestRouteMaintenance:
    def test_route_tables_populated_with_local_logical_routes(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        stack.start()
        network.simulator.run(20.0)
        ch_agents = [a for ch, a in stack.agents.items() if stack.model.is_cluster_head(ch)]
        populated = [a for a in ch_agents if a.route_table is not None and a.route_table.route_count() > 0]
        assert len(populated) >= len(ch_agents) // 2
        # at least one CH knows a multi-hop logical route
        multi_hop = [
            a
            for a in populated
            if any(r.logical_hops >= 2 for r in a.route_table.all_routes())
        ]
        assert multi_hop

    def test_routes_carry_qos_state(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        stack.start()
        network.simulator.run(15.0)
        for agent in stack.agents.values():
            if agent.route_table is None:
                continue
            for route in agent.route_table.all_routes():
                assert route.qos.delay > 0.0
                assert route.qos.bandwidth > 0.0

    def test_route_beacons_counted(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        stack.start()
        network.simulator.run(10.0)
        assert stack.aggregate_stats()["route_beacons_sent"] > 0


class TestDataPath:
    def run_multicast(self, members, source, duration=60.0, extra_positions=None):
        positions = dense_grid_positions()
        if extra_positions:
            positions.update(extra_positions)
        network, stack = build_hvdb_network(positions)
        for member in members:
            network.node(member).join_group(1)
        stack.start()
        network.simulator.run(25.0)   # let membership propagate
        agent = stack.agents[source]
        agent.send_multicast(1, payload="hello", size_bytes=256)
        network.simulator.run(duration - 25.0)
        return network, stack

    def test_members_in_other_hypercubes_receive_data(self):
        # members in three different blocks; source in the fourth
        network, stack = self.run_multicast(members=[0, 3, 12, 15], source=0)
        delivered = list(network.deliveries.values())[0].delivered
        assert 15 in delivered
        assert 3 in delivered
        assert 12 in delivered

    def test_source_not_counted_as_receiver(self):
        network, _ = self.run_multicast(members=[0, 15], source=0)
        record = list(network.deliveries.values())[0]
        assert 0 not in record.intended

    def test_local_cluster_member_receives(self):
        extra = {100: Point(160.0, 130.0)}
        network, stack = self.run_multicast(
            members=[100], source=0, extra_positions=extra
        )
        record = list(network.deliveries.values())[0]
        assert 100 in record.delivered

    def test_delivery_uses_mesh_and_cube_forwarding(self):
        network, stack = self.run_multicast(members=[0, 15, 12, 3], source=0)
        stats = stack.aggregate_stats()
        assert stats["data_forwarded_mesh"] > 0
        assert stats["data_forwarded_cube"] > 0

    def test_failover_when_tree_node_disappears(self):
        positions = dense_grid_positions()
        network, stack = build_hvdb_network(positions)
        for member in (3, 15):
            network.node(member).join_group(1)
        stack.start()
        network.simulator.run(25.0)
        # kill a CH that sits on the likely tree between node 0's block and the
        # members, then send immediately (before clustering repairs anything)
        victim = stack.clustering.head_of_node(5)
        network.fail_nodes([victim])
        stack.agents[0].send_multicast(1, payload="x", size_bytes=128)
        network.simulator.run(30.0)
        record = list(network.deliveries.values())[0]
        # the surviving members are still reached despite the failure
        assert set(record.delivered) >= (record.intended - {victim})


class TestBroadcasterCriteria:
    def test_all_criteria_produce_a_broadcaster(self):
        for criterion in BroadcasterCriterion:
            params = HVDBParameters(broadcaster_criterion=criterion)
            network, stack = build_hvdb_network(dense_grid_positions(), params=params)
            network.node(15).join_group(2)
            stack.start()
            network.simulator.run(30.0)
            stats = stack.aggregate_stats()
            assert stats["ht_summaries_broadcast"] > 0, criterion
