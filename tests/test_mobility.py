"""Unit tests for the mobility models."""

import math

import pytest

from repro.geo.area import Area
from repro.geo.geometry import Point, distance
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.group_mobility import ReferencePointGroupMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.static import StaticMobility

AREA = Area(1000.0, 1000.0)
NODE_IDS = list(range(20))


class TestStatic:
    def test_nodes_never_move(self):
        model = StaticMobility(AREA, NODE_IDS, seed=1)
        before = {n: model.position(n) for n in NODE_IDS}
        model.advance(100.0)
        after = {n: model.position(n) for n in NODE_IDS}
        assert before == after

    def test_explicit_positions(self):
        model = StaticMobility(AREA, [0, 1], positions={0: Point(10.0, 20.0)}, seed=1)
        assert model.position(0) == Point(10.0, 20.0)
        assert AREA.contains(model.position(1))

    def test_explicit_position_outside_area_rejected(self):
        with pytest.raises(ValueError):
            StaticMobility(AREA, [0], positions={0: Point(-5.0, 0.0)})

    def test_velocity_zero(self):
        model = StaticMobility(AREA, [0], seed=1)
        assert model.velocity(0).magnitude == 0.0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            StaticMobility(AREA, [1, 1])

    def test_set_position(self):
        model = StaticMobility(AREA, [0], seed=1)
        model.set_position(0, Point(500.0, 500.0))
        assert model.position(0) == Point(500.0, 500.0)
        with pytest.raises(ValueError):
            model.set_position(0, Point(5000.0, 0.0))

    def test_negative_dt_rejected(self):
        model = StaticMobility(AREA, [0], seed=1)
        with pytest.raises(ValueError):
            model.advance(-1.0)


class TestRandomWaypoint:
    def test_positions_stay_inside_area(self):
        model = RandomWaypointMobility(AREA, NODE_IDS, min_speed=1.0, max_speed=20.0, seed=3)
        for _ in range(200):
            model.advance(1.0)
            for n in NODE_IDS:
                assert AREA.contains(model.position(n))

    def test_nodes_actually_move(self):
        model = RandomWaypointMobility(AREA, NODE_IDS, min_speed=5.0, max_speed=10.0, seed=4)
        before = {n: model.position(n) for n in NODE_IDS}
        model.advance(10.0)
        moved = sum(1 for n in NODE_IDS if distance(before[n], model.position(n)) > 1.0)
        assert moved == len(NODE_IDS)

    def test_speed_respects_bounds(self):
        model = RandomWaypointMobility(AREA, NODE_IDS, min_speed=2.0, max_speed=4.0, seed=5)
        before = {n: model.position(n) for n in NODE_IDS}
        dt = 1.0
        model.advance(dt)
        for n in NODE_IDS:
            travelled = distance(before[n], model.position(n))
            assert travelled <= 4.0 * dt + 1e-6

    def test_pause_keeps_node_at_waypoint(self):
        model = RandomWaypointMobility(
            Area(50.0, 50.0), [0], min_speed=10.0, max_speed=10.0, pause_time=1e9, seed=6
        )
        # after enough time the node reaches its first waypoint and pauses forever
        for _ in range(100):
            model.advance(1.0)
        p1 = model.position(0)
        model.advance(10.0)
        assert model.position(0) == p1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(AREA, [0], min_speed=0.0, max_speed=5.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(AREA, [0], min_speed=5.0, max_speed=2.0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(AREA, [0], pause_time=-1.0)

    def test_deterministic_with_seed(self):
        a = RandomWaypointMobility(AREA, NODE_IDS, seed=42)
        b = RandomWaypointMobility(AREA, NODE_IDS, seed=42)
        for _ in range(10):
            a.advance(1.0)
            b.advance(1.0)
        assert all(a.position(n) == b.position(n) for n in NODE_IDS)


class TestRandomWalk:
    def test_inside_area(self):
        model = RandomWalkMobility(AREA, NODE_IDS, max_speed=15.0, epoch=5.0, seed=7)
        for _ in range(100):
            model.advance(1.0)
            assert all(AREA.contains(model.position(n)) for n in NODE_IDS)

    def test_direction_changes_after_epoch(self):
        model = RandomWalkMobility(AREA, [0], min_speed=5.0, max_speed=5.0, epoch=2.0, seed=8)
        v1 = model.velocity(0)
        model.advance(5.0)
        v2 = model.velocity(0)
        assert (v1.dx, v1.dy) != (v2.dx, v2.dy)

    def test_invalid_epoch(self):
        with pytest.raises(ValueError):
            RandomWalkMobility(AREA, [0], epoch=0.0)


class TestGaussMarkov:
    def test_inside_area(self):
        model = GaussMarkovMobility(AREA, NODE_IDS, mean_speed=10.0, seed=9)
        for _ in range(100):
            model.advance(1.0)
            assert all(AREA.contains(model.position(n)) for n in NODE_IDS)

    def test_alpha_one_keeps_speed_memory(self):
        model = GaussMarkovMobility(
            AREA, [0], mean_speed=5.0, speed_std=2.0, alpha=1.0, seed=10
        )
        s0 = model.velocity(0).magnitude
        model.advance(20.0)
        assert model.velocity(0).magnitude == pytest.approx(s0, abs=1e-9)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            GaussMarkovMobility(AREA, [0], alpha=1.5)

    def test_speed_never_negative(self):
        model = GaussMarkovMobility(AREA, NODE_IDS, mean_speed=1.0, speed_std=3.0, alpha=0.2, seed=11)
        for _ in range(50):
            model.advance(1.0)
            for n in NODE_IDS:
                assert model.velocity(n).magnitude >= 0.0


class TestGroupMobility:
    def make_model(self, seed=12):
        groups = {0: [0, 1, 2, 3, 4], 1: [5, 6, 7, 8, 9]}
        return ReferencePointGroupMobility(
            AREA, range(10), groups, group_speed=8.0, member_radius=60.0, member_speed=6.0, seed=seed
        )

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            ReferencePointGroupMobility(AREA, range(10), {0: [0, 1, 2]})

    def test_group_of(self):
        model = self.make_model()
        assert model.group_of(3) == 0
        assert model.group_of(7) == 1

    def test_members_stay_near_group_center(self):
        model = self.make_model()
        for _ in range(100):
            model.advance(1.0)
        for node_id in range(10):
            center = model.group_center(model.group_of(node_id))
            # allow slack: the member chases a moving target
            assert distance(model.position(node_id), center) < 200.0

    def test_groups_are_spatially_coherent(self):
        model = self.make_model(seed=13)
        for _ in range(50):
            model.advance(1.0)
        # within-group spread should be well below the area diagonal
        for gid, members in model.groups.items():
            positions = [model.position(n) for n in members]
            spread = max(
                distance(a, b) for a in positions for b in positions
            )
            assert spread < 500.0

    def test_positions_inside_area(self):
        model = self.make_model(seed=14)
        for _ in range(100):
            model.advance(1.0)
            for n in range(10):
                assert AREA.contains(model.position(n))
