"""Tests of the pluggable protocol-stack API and component registries.

Covers the contracts the registry-driven scenario assembly rests on:
unknown protocol/radio/mac/mobility names fail eagerly with the list of
registered alternatives, typed per-protocol config sections round-trip
through the orchestrator's content-hash cache deterministically, a
``protocol`` grid axis expands/shards deterministically over all five
stacks, and a third-party stack registers with one decorated class.
"""

import dataclasses
import os

import pytest

from repro.core.membership import BroadcasterCriterion
from repro.core.protocol import HVDBConfig, HVDBParameters
from repro.core.qos import QoSRequirement
from repro.experiments.orchestrator import (
    SpecError,
    SweepSpec,
    expand_spec,
    merge_caches,
    run_sweep,
    shard_runs,
    validate_runs,
)
from repro.experiments.scenarios import (
    PROTOCOLS,
    ScenarioConfig,
    build_scenario,
    config_axis_names,
)
from repro.registry import PROTOCOL_STACKS, RegistryError, register_protocol
from repro.simulation.agent import ProtocolAgent
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.stack import AgentStack


def tiny_config(**overrides) -> ScenarioConfig:
    base = ScenarioConfig(
        protocol="hvdb",
        n_nodes=14,
        area_size=500.0,
        radio_range=250.0,
        max_speed=2.0,
        group_size=4,
        traffic_start=3.0,
        traffic_interval=2.0,
        seed=3,
    )
    return dataclasses.replace(base, **overrides)


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(name="tiny", base=tiny_config(), grid={}, seeds=(1,), duration=8.0)
    base.update(overrides)
    return SweepSpec(**base)


class TestRegistryErrors:
    def test_unknown_protocol_lists_alternatives(self):
        with pytest.raises(RegistryError) as excinfo:
            build_scenario(tiny_config(protocol="gossip"))
        message = str(excinfo.value)
        for name in PROTOCOLS:
            assert name in message

    @pytest.mark.parametrize(
        "field_name, value",
        [
            ("protocol", "no_such_protocol"),
            ("radio", "no_such_radio"),
            ("mac", "no_such_mac"),
            ("mobility", "no_such_mobility"),
        ],
    )
    def test_unknown_component_fails_eagerly(self, tmp_path, field_name, value):
        # a typo'd component name must fail before any run executes
        cache_dir = str(tmp_path / "cache")
        spec = tiny_spec(base=tiny_config(**{field_name: value}))
        with pytest.raises(SpecError, match=value):
            run_sweep(spec, workers=1, cache_dir=cache_dir)
        assert not os.path.exists(cache_dir)

    def test_error_message_lists_registered_radios(self):
        with pytest.raises(SpecError, match="unit_disk"):
            validate_runs(expand_spec(tiny_spec(base=tiny_config(radio="nope"))))

    def test_builtin_protocols_registered(self):
        assert set(PROTOCOLS) == {"hvdb", "flooding", "sgm", "dsm", "spbm"}
        assert set(PROTOCOLS) <= set(PROTOCOL_STACKS.names())

    def test_shadowing_a_registered_name_is_rejected(self):
        with pytest.raises(RegistryError, match="already registered"):
            @register_protocol("hvdb")
            class _Impostor:  # pragma: no cover - never instantiated
                pass
        # re-decorating the same object is an idempotent no-op
        from repro.core.protocol import HVDBStack

        assert register_protocol("hvdb")(HVDBStack) is HVDBStack


class TestAxisVocabulary:
    def test_dotted_axes_cover_every_section_field(self):
        names = config_axis_names()
        assert "hvdb.dimension" in names
        assert "hvdb.params" in names
        assert "dsm.position_period" in names
        assert "sgm.fanout" in names
        assert "spbm.levels" in names
        assert {"protocol", "radio", "mac", "mobility"} <= names

    def test_unknown_dotted_axis_raises(self):
        with pytest.raises(SpecError, match="hvdb.dimenson"):
            expand_spec(tiny_spec(grid={"hvdb.dimenson": [2]}))

    def test_results_table_accepts_dotted_swept_axis(self):
        from repro.experiments.runner import results_table, sweep

        results = sweep(
            tiny_config(), parameter="hvdb.dimension", values=[2, 3], duration=6.0
        )
        table = results_table(results, swept="hvdb.dimension", title="dims")
        assert "hvdb.dimension" in table


class TestTypedConfigHashing:
    def test_identical_nested_configs_hash_equal(self):
        make = lambda: tiny_spec(
            base=tiny_config(
                hvdb=HVDBConfig(
                    dimension=3,
                    params=HVDBParameters(max_logical_hops=2),
                    qos_requirements={1: QoSRequirement(max_delay=0.3)},
                )
            )
        )
        (a,), (b,) = expand_spec(make()), expand_spec(make())
        assert a.cache_key() == b.cache_key()

    def test_nested_field_changes_the_key(self):
        keys = set()
        for dimension in (2, 3):
            spec = tiny_spec(base=tiny_config(hvdb=HVDBConfig(dimension=dimension)))
            keys.add(expand_spec(spec)[0].cache_key())
        keys.add(
            expand_spec(
                tiny_spec(base=tiny_config(hvdb=HVDBConfig(dimension=2, vc_cols=4)))
            )[0].cache_key()
        )
        assert len(keys) == 3

    def test_qos_dict_insertion_order_irrelevant(self):
        forward = {1: QoSRequirement(max_delay=0.2), 2: QoSRequirement(max_delay=0.4)}
        backward = {2: QoSRequirement(max_delay=0.4), 1: QoSRequirement(max_delay=0.2)}
        keys = {
            expand_spec(
                tiny_spec(base=tiny_config(hvdb=HVDBConfig(qos_requirements=qos)))
            )[0].cache_key()
            for qos in (forward, backward)
        }
        assert len(keys) == 1

    def test_enum_valued_parameter_hashes_deterministically(self):
        keys = set()
        for criterion in (
            BroadcasterCriterion.NEIGHBORHOOD_MEMBERS,
            BroadcasterCriterion.NEIGHBORHOOD_MEMBERS,
            BroadcasterCriterion.MOST_GROUPS,
        ):
            params = HVDBParameters(broadcaster_criterion=criterion)
            spec = tiny_spec(base=tiny_config(hvdb=HVDBConfig(params=params)))
            keys.add(expand_spec(spec)[0].cache_key())
        assert len(keys) == 2

    def test_mobility_and_component_names_are_in_the_key(self):
        base_key = expand_spec(tiny_spec())[0].cache_key()
        for override in ({"mobility": "static"}, {"mac": "ideal"}, {"radio": "log_distance"}):
            other = expand_spec(tiny_spec(base=tiny_config(**override)))[0].cache_key()
            assert other != base_key

    def test_nested_config_round_trips_through_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        spec = tiny_spec(
            base=tiny_config(
                hvdb=HVDBConfig(
                    dimension=3,
                    params=HVDBParameters(max_logical_hops=2),
                    qos_requirements={1: QoSRequirement(max_delay=0.5)},
                )
            )
        )
        first = run_sweep(spec, workers=1, cache_dir=cache_dir)
        second = run_sweep(spec, workers=1, cache_dir=cache_dir)
        assert all(not r.from_cache for r in first)
        assert all(r.from_cache for r in second)
        assert [r.metrics for r in first] == [r.metrics for r in second]


class TestProtocolAxis:
    def protocol_spec(self, **overrides) -> SweepSpec:
        return tiny_spec(grid={"protocol": list(PROTOCOLS)}, **overrides)

    def test_protocol_axis_expands_deterministically(self):
        runs_a = expand_spec(self.protocol_spec())
        runs_b = expand_spec(self.protocol_spec())
        assert [r.run_id for r in runs_a] == [r.run_id for r in runs_b]
        assert [r.config.protocol for r in runs_a] == list(PROTOCOLS)
        assert len({r.cache_key() for r in runs_a}) == len(PROTOCOLS)

    def test_protocol_axis_shards_deterministically(self):
        runs = expand_spec(self.protocol_spec())
        shards = [shard_runs(runs, i, 3) for i in (1, 2, 3)]
        ids = [r.run_id for shard in shards for r in shard]
        assert sorted(ids) == sorted(r.run_id for r in runs)
        assert shards == [shard_runs(expand_spec(self.protocol_spec()), i, 3) for i in (1, 2, 3)]

    def test_sharded_protocol_sweep_merges_byte_identical(self, tmp_path, monkeypatch, capsys):
        # the acceptance scenario: one registered spec sweeping `protocol`
        # over all five stacks survives --shard/merge with artifacts
        # byte-identical to an unsharded run of the same grid
        from repro.experiments import specs
        from repro.experiments.__main__ import main

        monkeypatch.setitem(specs.SPECS, "proto_all", self.protocol_spec(name="proto_all"))

        ref_out = str(tmp_path / "ref")
        assert main(
            ["run", "proto_all", "--cache-dir", str(tmp_path / "ref-cache"),
             "--out", ref_out, "--workers", "1"]
        ) == 0
        shard_dirs = []
        for index in (1, 2, 3):
            shard_dir = str(tmp_path / f"shard{index}")
            shard_dirs.append(shard_dir)
            assert main(
                ["run", "proto_all", "--shard", f"{index}/3", "--cache-dir", shard_dir,
                 "--out", str(tmp_path / "s"), "--format", "none", "--workers", "1"]
            ) == 0
        merged_out = str(tmp_path / "merged-out")
        args = ["merge", "proto_all", "--cache-dir", str(tmp_path / "merged"),
                "--out", merged_out]
        for shard_dir in shard_dirs:
            args += ["--from", shard_dir]
        assert main(args) == 0
        capsys.readouterr()

        with open(os.path.join(ref_out, "proto_all.csv"), "rb") as fh:
            reference_csv = fh.read()
        with open(os.path.join(merged_out, "proto_all.csv"), "rb") as fh:
            assert fh.read() == reference_csv


# ---------------------------------------------------------------------------
# Third-party extension: the docs' minimal stack, registered for real
# ---------------------------------------------------------------------------

UNITTEST_PROTOCOL = "unittest_gossip"


class _GossipAgent(ProtocolAgent):
    """Broadcast once, neighbours deliver; deliberately minimal."""

    protocol_name = UNITTEST_PROTOCOL

    def __init__(self) -> None:
        super().__init__()
        self.data_originated = 0

    def send_multicast(self, group, payload, size_bytes=512):
        packet = Packet(
            kind=PacketKind.DATA,
            protocol=UNITTEST_PROTOCOL,
            msg_type="data",
            source=self.node_id,
            group=group,
            payload=payload,
            size_bytes=size_bytes,
            created_at=self.now,
        )
        self.network.register_data_packet(packet, self.network.group_members(group))
        self.data_originated += 1
        if self.node.is_member(group):
            self.node.deliver_to_application(packet)
        self.node.broadcast(packet)

    def on_packet(self, packet, from_node):
        if packet.protocol != UNITTEST_PROTOCOL:
            return
        if packet.group is not None and self.node.is_member(packet.group):
            self.node.deliver_to_application(packet)


@register_protocol(UNITTEST_PROTOCOL)
class _GossipStack(AgentStack):
    name = UNITTEST_PROTOCOL
    stat_fields = ("data_originated",)

    def make_agent(self, config=None):
        return _GossipAgent()


@register_protocol("unittest_misnamed")
class _MisnamedStack(AgentStack):
    """Registered under one name, attaches agents speaking another."""

    name = "unittest_misnamed"
    stat_fields = ()

    def make_agent(self, config=None):
        return _GossipAgent()   # speaks "unittest_gossip", not "unittest_misnamed"


class TestThirdPartyStack:
    def test_agent_name_mismatch_fails_at_build_time(self):
        with pytest.raises(RegistryError, match="protocol_name"):
            build_scenario(tiny_config(protocol="unittest_misnamed"))

    def test_registered_stack_builds_and_reports(self):
        scenario = build_scenario(tiny_config(protocol=UNITTEST_PROTOCOL))
        assert isinstance(scenario.stack, _GossipStack)
        assert scenario.backbone_nodes() is None
        scenario.run(10.0)
        stats = scenario.protocol_stats()
        assert stats["data_originated"] > 0
