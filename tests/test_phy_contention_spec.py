"""Tests of the ``a3_phy_contention`` / ``phy_smoke`` sweep specs.

The physical-layer sweeps are the surfaces that exercise the ``sinr``
radio and ``csma_ca`` MAC end to end: these tests pin down that the new
grid axes are really registered (protocol x radio x MAC x offered load),
that ``phy_smoke`` covers every registered (radio, MAC) combination, and
that a sharded run of the contention grid merges to byte-identical
artifacts -- the same guarantee the classic sweeps enjoy.
"""

import dataclasses
import hashlib
import os

from repro.experiments.orchestrator import (
    expand_spec,
    export_csv,
    merge_caches,
    run_sweep,
)
from repro.experiments.specs import get_spec
from repro.registry import MACS, RADIOS


class TestA3PhyContentionSpec:
    def test_grid_sweeps_phy_axes(self):
        spec = get_spec("a3_phy_contention")
        assert set(spec.grid) == {"protocol", "radio", "mac", "offered_load"}
        assert spec.grid["radio"] == ["unit_disk", "sinr"]
        assert spec.grid["mac"] == ["csma", "csma_ca"]
        runs = expand_spec(spec)
        assert len(runs) == 16
        assert {(r.config.radio, r.config.mac) for r in runs} == {
            ("unit_disk", "csma"),
            ("unit_disk", "csma_ca"),
            ("sinr", "csma"),
            ("sinr", "csma_ca"),
        }

    def test_offered_load_is_a_label_axis(self):
        runs = expand_spec(get_spec("a3_phy_contention"))
        loads = {r.params["offered_load"]: r.config.traffic_interval for r in runs}
        assert loads == {"low": 2.0, "high": 0.5}
        # the label, not the coupled traffic_interval, names the run
        assert all("traffic_interval" not in r.params for r in runs)

    def test_phy_axes_distinguish_cache_keys(self):
        runs = expand_spec(get_spec("a3_phy_contention"))
        keys = [r.cache_key() for r in runs]
        assert len(keys) == len(set(keys))

    def test_adaptive_variant_registered(self):
        spec = get_spec("a3_phy_contention_adaptive")
        assert spec.replication is not None
        assert spec.replication.metric == "pdr"
        assert spec.grid == get_spec("a3_phy_contention").grid


class TestPhySmokeSpec:
    def test_covers_every_registered_radio_mac_pair(self):
        runs = expand_spec(get_spec("phy_smoke"))
        combos = {(r.config.radio, r.config.mac) for r in runs}
        assert combos == {
            (radio, mac) for radio in RADIOS.names() for mac in MACS.names()
        }
        assert len(runs) == len(combos)  # exactly one run per combination


def shrunk_contention_spec():
    """A 4-run slice of ``a3_phy_contention`` small enough for a test run."""
    full = get_spec("a3_phy_contention")
    return dataclasses.replace(
        full,
        name="a3_phy_contention_shrunk",
        base=dataclasses.replace(
            full.base,
            n_nodes=16,
            area_size=500.0,
            group_size=5,
            traffic_start=3.0,
        ),
        grid={
            "protocol": ["flooding"],
            "radio": ["unit_disk", "sinr"],
            "mac": ["csma", "csma_ca"],
            "offered_load": [{"offered_load": "high", "traffic_interval": 0.5}],
        },
        duration=8.0,
    )


class TestShardedPhyContention:
    def test_sharded_run_merges_to_identical_artifact_bytes(self, tmp_path):
        spec = shrunk_contention_spec()
        reference = run_sweep(spec, workers=1, executor="serial")
        ref_csv = str(tmp_path / "reference.csv")
        export_csv(reference, ref_csv)

        shard_dirs = []
        for index in (1, 2):
            shard_dir = str(tmp_path / f"shard{index}")
            shard_dirs.append(shard_dir)
            results = run_sweep(
                spec, workers=1, executor="serial",
                cache_dir=shard_dir, shard=(index, 2),
            )
            assert all(not r.from_cache for r in results)

        merged_dir = str(tmp_path / "merged")
        copied, skipped = merge_caches(shard_dirs, merged_dir)
        assert (copied, skipped) == (spec.run_count, 0)

        merged = run_sweep(spec, workers=1, executor="serial", cache_dir=merged_dir)
        assert all(r.from_cache for r in merged)
        merged_csv = str(tmp_path / "merged.csv")
        export_csv(merged, merged_csv)

        with open(ref_csv, "rb") as fh:
            reference_bytes = fh.read()
        with open(merged_csv, "rb") as fh:
            assert fh.read() == reference_bytes
        assert hashlib.sha256(reference_bytes).hexdigest()  # non-empty artifact
        assert os.path.getsize(ref_csv) > 0
