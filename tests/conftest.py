"""Shared pytest fixtures.

Also makes the test suite runnable straight from a source checkout (without
``pip install -e .``) by putting ``src/`` on ``sys.path``.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

import pytest

from repro.geo.area import Area
from repro.geo.grid import VirtualCircleGrid
from repro.mobility.static import StaticMobility
from repro.simulation.mac import IdealMac
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import MobileNode
from repro.simulation.radio import UnitDiskRadio


@pytest.fixture
def small_area() -> Area:
    """A 1000 x 1000 m deployment area."""
    return Area(1000.0, 1000.0)


@pytest.fixture
def grid_8x8(small_area: Area) -> VirtualCircleGrid:
    """The paper's Figure 2 layout: an 8x8 virtual-circle grid."""
    return VirtualCircleGrid(small_area, 8, 8)


def make_static_network(
    positions,
    area: Area = None,
    radio_range: float = 250.0,
    seed: int = 1,
    ideal_mac: bool = True,
) -> Network:
    """Build a static network with explicitly placed nodes.

    ``positions`` maps node id -> Point.  Used by many unit and integration
    tests that need a deterministic topology.
    """
    area = area or Area(1000.0, 1000.0)
    node_ids = sorted(positions.keys())
    mobility = StaticMobility(area, node_ids, positions=positions, seed=seed)
    config = NetworkConfig(
        area=area,
        radio=UnitDiskRadio(radio_range),
        mac=IdealMac() if ideal_mac else NetworkConfig(area=area).mac,
        seed=seed,
    )
    network = Network(config, mobility)
    for node_id in node_ids:
        network.add_node(MobileNode(node_id))
    return network


@pytest.fixture
def static_network_factory():
    """Factory fixture returning :func:`make_static_network`."""
    return make_static_network
