"""Unit tests for repro.geo.geometry."""

import math

import pytest

from repro.geo.geometry import (
    Point,
    Vector,
    clamp,
    distance,
    distance_sq,
    heading_to_vector,
    midpoint,
    move_towards,
)


class TestPoint:
    def test_translate(self):
        assert Point(1.0, 2.0).translate(Vector(3.0, -1.0)) == Point(4.0, 1.0)

    def test_vector_to(self):
        v = Point(1.0, 1.0).vector_to(Point(4.0, 5.0))
        assert (v.dx, v.dy) == (3.0, 4.0)

    def test_distance_to(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_iter_and_tuple(self):
        p = Point(2.5, -1.5)
        assert tuple(p) == (2.5, -1.5)
        assert p.as_tuple() == (2.5, -1.5)

    def test_immutability(self):
        p = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.x = 5.0  # type: ignore[misc]


class TestVector:
    def test_magnitude(self):
        assert Vector(3.0, 4.0).magnitude == pytest.approx(5.0)

    def test_heading(self):
        assert Vector(0.0, 1.0).heading == pytest.approx(math.pi / 2)
        assert Vector(-1.0, 0.0).heading == pytest.approx(math.pi)

    def test_scaled(self):
        v = Vector(1.0, -2.0).scaled(3.0)
        assert (v.dx, v.dy) == (3.0, -6.0)

    def test_normalized(self):
        v = Vector(3.0, 4.0).normalized()
        assert v.magnitude == pytest.approx(1.0)
        assert v.dx == pytest.approx(0.6)

    def test_normalized_zero_vector(self):
        v = Vector(0.0, 0.0).normalized()
        assert (v.dx, v.dy) == (0.0, 0.0)

    def test_addition_subtraction_negation(self):
        a, b = Vector(1.0, 2.0), Vector(3.0, -1.0)
        assert a + b == Vector(4.0, 1.0)
        assert a - b == Vector(-2.0, 3.0)
        assert -a == Vector(-1.0, -2.0)

    def test_dot(self):
        assert Vector(1.0, 2.0).dot(Vector(3.0, 4.0)) == pytest.approx(11.0)


class TestFunctions:
    def test_distance_and_squared_consistency(self):
        a, b = Point(1.0, 2.0), Point(4.0, 6.0)
        assert distance(a, b) ** 2 == pytest.approx(distance_sq(a, b))

    def test_midpoint(self):
        assert midpoint(Point(0.0, 0.0), Point(2.0, 4.0)) == Point(1.0, 2.0)

    def test_clamp_inside_and_outside(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0
        assert clamp(-1.0, 0.0, 10.0) == 0.0
        assert clamp(11.0, 0.0, 10.0) == 10.0

    def test_clamp_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(1.0, 5.0, 2.0)

    def test_heading_to_vector(self):
        v = heading_to_vector(0.0, 2.0)
        assert v.dx == pytest.approx(2.0)
        assert v.dy == pytest.approx(0.0)
        v = heading_to_vector(math.pi / 2, 3.0)
        assert v.dx == pytest.approx(0.0, abs=1e-12)
        assert v.dy == pytest.approx(3.0)

    def test_move_towards_partial(self):
        result = move_towards(Point(0.0, 0.0), Point(10.0, 0.0), 4.0)
        assert result == Point(4.0, 0.0)

    def test_move_towards_reaches_target(self):
        target = Point(3.0, 4.0)
        assert move_towards(Point(0.0, 0.0), target, 100.0) == target
        # exactly at the target distance also arrives
        assert move_towards(Point(0.0, 0.0), target, 5.0) == target

    def test_move_towards_zero_distance(self):
        p = Point(1.0, 1.0)
        assert move_towards(p, p, 0.0) == p

    def test_move_towards_negative_step_raises(self):
        with pytest.raises(ValueError):
            move_towards(Point(0.0, 0.0), Point(1.0, 1.0), -1.0)
