"""Unit tests for hypercube routing (e-cube, shortest path, fault-tolerant)."""

import pytest

from repro.hypercube.labels import hamming_distance
from repro.hypercube.routing import (
    RoutingError,
    ecube_next_hop,
    ecube_path,
    fault_tolerant_path,
    logical_hop_count,
    path_is_valid,
    shortest_path,
)
from repro.hypercube.topology import IncompleteHypercube


class TestEcube:
    def test_next_hop_corrects_lowest_dimension(self):
        assert ecube_next_hop(0b0000, 0b1010) == 0b0010

    def test_next_hop_descending(self):
        assert ecube_next_hop(0b0000, 0b1010, ascending=False) == 0b1000

    def test_next_hop_at_destination_raises(self):
        with pytest.raises(RoutingError):
            ecube_next_hop(5, 5)

    def test_path_length_equals_hamming_distance(self):
        path = ecube_path(0b0011, 0b1100)
        assert len(path) - 1 == hamming_distance(0b0011, 0b1100)
        assert path[0] == 0b0011
        assert path[-1] == 0b1100

    def test_path_consecutive_hops_adjacent(self):
        path = ecube_path(0, 15)
        for a, b in zip(path, path[1:]):
            assert hamming_distance(a, b) == 1

    def test_trivial_path(self):
        assert ecube_path(6, 6) == [6]


class TestShortestPath:
    def test_on_complete_cube_matches_hamming(self):
        cube = IncompleteHypercube(4)
        path = shortest_path(cube, 0b0000, 0b1111)
        assert len(path) - 1 == 4

    def test_detour_when_nodes_missing(self):
        cube = IncompleteHypercube(3)
        cube.remove_node(1)  # 0-1-3 blocked
        path = shortest_path(cube, 0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert 1 not in path
        assert path_is_valid(cube, path)

    def test_unreachable_raises(self):
        cube = IncompleteHypercube(3, present_nodes=[0, 7])
        with pytest.raises(RoutingError):
            shortest_path(cube, 0, 7)

    def test_missing_endpoint_raises(self):
        cube = IncompleteHypercube(3, present_nodes=[0, 1])
        with pytest.raises(RoutingError):
            shortest_path(cube, 0, 5)
        with pytest.raises(RoutingError):
            shortest_path(cube, 5, 0)

    def test_same_source_destination(self):
        cube = IncompleteHypercube(3)
        assert shortest_path(cube, 4, 4) == [4]


class TestFaultTolerantPath:
    def test_prefers_ecube_when_intact(self):
        cube = IncompleteHypercube(4)
        path = fault_tolerant_path(cube, 0b0000, 0b0101)
        assert path == ecube_path(0b0000, 0b0101)

    def test_detours_around_failed_node(self):
        cube = IncompleteHypercube(4)
        ecube = ecube_path(0b0000, 0b1111)
        failed = ecube[1]
        path = fault_tolerant_path(cube, 0b0000, 0b1111, avoid=[failed])
        assert failed not in path
        assert path[0] == 0b0000 and path[-1] == 0b1111
        assert path_is_valid(cube, path)

    def test_detours_around_missing_link(self):
        cube = IncompleteHypercube(3)
        cube.remove_edge(0, 1)
        path = fault_tolerant_path(cube, 0, 1)
        assert path[0] == 0 and path[-1] == 1
        assert len(path) > 2
        assert path_is_valid(cube, path)

    def test_avoiding_endpoint_raises(self):
        cube = IncompleteHypercube(3)
        with pytest.raises(RoutingError):
            fault_tolerant_path(cube, 0, 7, avoid=[7])

    def test_no_route_raises(self):
        cube = IncompleteHypercube(3)
        # sever every neighbour of node 0
        for nb in (1, 2, 4):
            cube.remove_node(nb)
        with pytest.raises(RoutingError):
            fault_tolerant_path(cube, 0, 7)

    def test_survives_n_minus_1_failures(self):
        # the paper's fault-tolerance claim: an n-cube pair survives any
        # n-1 node failures (here: remove 3 arbitrary non-endpoint nodes of a 4-cube)
        cube = IncompleteHypercube(4)
        for failed in (1, 2, 4):
            cube.remove_node(failed)
        path = fault_tolerant_path(cube, 0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert path_is_valid(cube, path)


class TestHelpers:
    def test_logical_hop_count_paper_example(self):
        # 1000 -> 1100 -> 1101 comprises 2 logical hops (Section 4.1)
        assert logical_hop_count([0b1000, 0b1100, 0b1101]) == 2

    def test_logical_hop_count_single_node(self):
        assert logical_hop_count([3]) == 0

    def test_logical_hop_count_empty_raises(self):
        with pytest.raises(ValueError):
            logical_hop_count([])

    def test_path_is_valid_rejects_broken_path(self):
        cube = IncompleteHypercube(3)
        cube.remove_node(1)
        assert not path_is_valid(cube, [0, 1, 3])
        assert not path_is_valid(cube, [])
        assert path_is_valid(cube, [0, 2, 3])
