"""Property-based tests for mobility, the event engine and the geo grid."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.area import Area, BoundaryPolicy
from repro.geo.geometry import Point, Vector
from repro.geo.grid import VirtualCircleGrid
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.simulation.engine import Simulator


class TestAreaProperties:
    @given(
        st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False),
        st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False),
        st.sampled_from(list(BoundaryPolicy)),
    )
    def test_boundary_policy_always_returns_point_inside(self, x, y, policy):
        area = Area(1000.0, 700.0)
        point, _ = area.apply_boundary(Point(x, y), Vector(1.0, -2.0), policy)
        assert area.contains(point)

    @given(st.floats(min_value=0.0, max_value=1000.0), st.floats(min_value=0.0, max_value=700.0))
    def test_inside_points_unchanged(self, x, y):
        area = Area(1000.0, 700.0)
        for policy in BoundaryPolicy:
            point, velocity = area.apply_boundary(Point(x, y), Vector(3.0, 4.0), policy)
            assert point == Point(x, y)
            assert velocity == Vector(3.0, 4.0)


class TestGridProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_home_circle_always_covers_point(self, cols, rows, fx, fy):
        area = Area(900.0, 600.0)
        grid = VirtualCircleGrid(area, cols, rows)
        point = Point(fx * area.width, fy * area.height)
        coord = grid.coord_of(point)
        assert 0 <= coord[0] < cols and 0 <= coord[1] < rows
        assert grid.circle(coord).contains(point)
        assert coord in grid.covering_coords(point)


class TestMobilityProperties:
    @given(
        st.sampled_from(["waypoint", "walk", "gauss"]),
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.5, max_value=20.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_nodes_never_leave_area(self, kind, n_nodes, speed, seed):
        area = Area(500.0, 400.0)
        ids = list(range(n_nodes))
        if kind == "waypoint":
            model = RandomWaypointMobility(area, ids, min_speed=0.5, max_speed=speed, seed=seed)
        elif kind == "walk":
            model = RandomWalkMobility(area, ids, min_speed=0.5, max_speed=speed, epoch=3.0, seed=seed)
        else:
            model = GaussMarkovMobility(area, ids, mean_speed=speed, seed=seed)
        for _ in range(30):
            model.advance(1.0)
        for node_id in ids:
            assert area.contains(model.position(node_id))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_trajectories(self, seed):
        area = Area(500.0, 500.0)
        a = RandomWaypointMobility(area, range(5), seed=seed)
        b = RandomWaypointMobility(area, range(5), seed=seed)
        for _ in range(20):
            a.advance(1.0)
            b.advance(1.0)
        assert all(a.position(i) == b.position(i) for i in range(5))


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40))
    def test_events_always_execute_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run_until(200.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=50.0), st.booleans()), max_size=30
        )
    )
    def test_cancelled_events_never_fire(self, entries):
        sim = Simulator()
        fired = []
        expected = 0
        for delay, cancel in entries:
            event = sim.schedule(delay, lambda d=delay: fired.append(d))
            if cancel:
                event.cancel()
            else:
                expected += 1
        sim.run_until(100.0)
        assert len(fired) == expected
