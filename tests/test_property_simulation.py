"""Property-based tests for mobility, the event engine and the geo grid."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.area import Area, BoundaryPolicy
from repro.geo.geometry import Point, Vector
from repro.geo.grid import VirtualCircleGrid
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.simulation.engine import Simulator


class TestAreaProperties:
    @given(
        st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False),
        st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False),
        st.sampled_from(list(BoundaryPolicy)),
    )
    def test_boundary_policy_always_returns_point_inside(self, x, y, policy):
        area = Area(1000.0, 700.0)
        point, _ = area.apply_boundary(Point(x, y), Vector(1.0, -2.0), policy)
        assert area.contains(point)

    @given(st.floats(min_value=0.0, max_value=1000.0), st.floats(min_value=0.0, max_value=700.0))
    def test_inside_points_unchanged(self, x, y):
        area = Area(1000.0, 700.0)
        for policy in BoundaryPolicy:
            point, velocity = area.apply_boundary(Point(x, y), Vector(3.0, 4.0), policy)
            assert point == Point(x, y)
            assert velocity == Vector(3.0, 4.0)


class TestGridProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_home_circle_always_covers_point(self, cols, rows, fx, fy):
        area = Area(900.0, 600.0)
        grid = VirtualCircleGrid(area, cols, rows)
        point = Point(fx * area.width, fy * area.height)
        coord = grid.coord_of(point)
        assert 0 <= coord[0] < cols and 0 <= coord[1] < rows
        assert grid.circle(coord).contains(point)
        assert coord in grid.covering_coords(point)


class TestMobilityProperties:
    @given(
        st.sampled_from(["waypoint", "walk", "gauss"]),
        st.integers(min_value=1, max_value=12),
        st.floats(min_value=0.5, max_value=20.0),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_nodes_never_leave_area(self, kind, n_nodes, speed, seed):
        area = Area(500.0, 400.0)
        ids = list(range(n_nodes))
        if kind == "waypoint":
            model = RandomWaypointMobility(area, ids, min_speed=0.5, max_speed=speed, seed=seed)
        elif kind == "walk":
            model = RandomWalkMobility(area, ids, min_speed=0.5, max_speed=speed, epoch=3.0, seed=seed)
        else:
            model = GaussMarkovMobility(area, ids, mean_speed=speed, seed=seed)
        for _ in range(30):
            model.advance(1.0)
        for node_id in ids:
            assert area.contains(model.position(node_id))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_trajectories(self, seed):
        area = Area(500.0, 500.0)
        a = RandomWaypointMobility(area, range(5), seed=seed)
        b = RandomWaypointMobility(area, range(5), seed=seed)
        for _ in range(20):
            a.advance(1.0)
            b.advance(1.0)
        assert all(a.position(i) == b.position(i) for i in range(5))


class TestEngineProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=40))
    def test_events_always_execute_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run_until(200.0)
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=50.0), st.booleans()), max_size=30
        )
    )
    def test_cancelled_events_never_fire(self, entries):
        sim = Simulator()
        fired = []
        expected = 0
        for delay, cancel in entries:
            event = sim.schedule(delay, lambda d=delay: fired.append(d))
            if cancel:
                event.cancel()
            else:
                expected += 1
        sim.run_until(100.0)
        assert len(fired) == expected


class TestPhyProperties:
    """Physical-layer invariants (see docs/physical-layer.md)."""

    @given(
        st.floats(min_value=-95.0, max_value=0.0),
        st.lists(st.floats(min_value=-120.0, max_value=-40.0), max_size=8),
        st.floats(min_value=-120.0, max_value=-60.0),
    )
    def test_sinr_non_increasing_as_interferers_added(
        self, signal, interferers, extra
    ):
        from repro.simulation.phy import sinr_db

        noise = -100.0
        without = sinr_db(signal, interferers, noise)
        with_extra = sinr_db(signal, interferers + [extra], noise)
        assert with_extra <= without + 1e-9

    @given(
        st.sampled_from(["unit_disk", "log_distance", "sinr"]),
        st.floats(min_value=0.0, max_value=800.0),
        st.floats(min_value=0.0, max_value=800.0),
        st.floats(min_value=0.0, max_value=800.0),
        st.floats(min_value=0.0, max_value=800.0),
    )
    def test_reception_probability_in_unit_interval(self, radio, ax, ay, bx, by):
        from repro.geo.geometry import Point
        from repro.registry import RADIOS

        model = RADIOS.get(radio)(None)
        p = model.reception_probability(Point(ax, ay), Point(bx, by))
        assert 0.0 <= p <= 1.0

    @given(
        st.integers(min_value=1, max_value=4000),
        st.integers(min_value=1, max_value=4000),
        st.floats(min_value=1e4, max_value=1e8),
        st.floats(min_value=1e4, max_value=1e8),
    )
    def test_airtime_monotone_in_size_and_bitrate(self, s1, s2, b1, b2):
        from repro.simulation.phy import CsmaCaMac, CsmaCaMacConfig

        small, large = sorted((s1, s2))
        slow, fast = sorted((b1, b2))
        if small != large:
            mac = CsmaCaMac(CsmaCaMacConfig(bitrate_bps=slow))
            assert mac.airtime(large) > mac.airtime(small)
        if slow != fast:
            slow_mac = CsmaCaMac(CsmaCaMacConfig(bitrate_bps=slow))
            fast_mac = CsmaCaMac(CsmaCaMacConfig(bitrate_bps=fast))
            assert fast_mac.airtime(s1) < slow_mac.airtime(s1)

    @given(
        st.floats(min_value=0.05, max_value=0.9),
        st.floats(min_value=0.5, max_value=5.0),
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=0.5),
                st.integers(min_value=64, max_value=2048),
            ),
            min_size=1,
            max_size=60,
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_duty_cycle_budget_never_exceeded_over_any_window(
        self, duty, window, arrivals, seed
    ):
        from repro.simulation.phy import CsmaCaMac, CsmaCaMacConfig

        mac = CsmaCaMac(
            CsmaCaMacConfig(duty_cycle=duty, duty_cycle_window=window)
        )
        rng = random.Random(seed)
        now = 0.0
        grants = []  # (start, airtime) of every admitted frame
        for gap, size in arrivals:
            now += gap
            plan = mac.plan_transmission(0, now, size, contenders=2, rng=rng)
            if plan.proceed:
                grants.append((now, plan.airtime))
        budget = duty * window + 1e-9
        # airtime started within (t - window, t] never exceeds the budget,
        # for t at every grant instant (the extremal window endpoints)
        for t, _ in grants:
            used = sum(a for s, a in grants if t - window < s <= t)
            assert used <= budget

    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_backoff_bounded_by_max_stage(self, contenders, stage, cw_min, seed):
        from repro.simulation.phy import CsmaCaMac, CsmaCaMacConfig

        config = CsmaCaMacConfig(cw_min=cw_min, max_backoff_stage=stage)
        mac = CsmaCaMac(config)
        cw = mac.contention_window(contenders)
        assert cw_min <= cw <= cw_min << stage
        rng = random.Random(seed)
        plan = mac.plan_transmission(0, 0.0, 512, contenders, rng)
        assert plan.proceed
        max_delay = (
            config.base_latency
            + config.difs
            + (cw - 1) * config.slot_time
            + mac.airtime(512)
        )
        assert config.base_latency + config.difs <= plan.delay <= max_delay + 1e-12
